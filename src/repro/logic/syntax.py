"""Abstract syntax of first-order logic over a relational vocabulary.

Formulas are immutable trees built from atoms ``R(t₁, …, t_k)``, equality
``t₁ = t₂``, the connectives ``¬ ∧ ∨ →`` and the quantifiers ``∃ ∀``.
Terms are variables or constants; constants are universe elements (the
paper identifies ``a ∈ U`` with its constant symbol, §2.1).

All nodes are hashable value objects, so formulas can key caches, and
provide ``children()`` for generic traversals used by the analysis and
normal-form modules.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple, Union

from repro.relational.facts import Value
from repro.relational.schema import RelationSymbol


# --------------------------------------------------------------------- terms
class Term:
    """Base class of terms (variables and constants)."""

    __slots__ = ()


class Variable(Term):
    """A first-order variable, identified by name.

    >>> Variable("x") == Variable("x")
    True
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant(Term):
    """A constant naming a universe element (paper §2.1 expands FO[τ] by
    constants from U).

    >>> Constant(3).value
    3
    """

    __slots__ = ("value",)

    def __init__(self, value: Value):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


def as_term(value: Union[Term, Value]) -> Term:
    """Coerce raw Python values to constants, pass terms through.

    >>> as_term(5)
    Constant(5)
    """
    if isinstance(value, Term):
        return value
    return Constant(value)


# ------------------------------------------------------------------ formulas
class Formula:
    """Base class of FO formulas."""

    __slots__ = ()

    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas (empty for atoms)."""
        return ()

    # Connective builders, so formulas compose fluently:
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


class Atom(Formula):
    """A relational atom ``R(t₁, …, t_k)``.

    >>> R = RelationSymbol("R", 2)
    >>> str(Atom(R, (Variable("x"), Constant(1))))
    'R(x, 1)'
    """

    __slots__ = ("relation", "terms")

    def __init__(self, relation: RelationSymbol, terms: Iterable[Union[Term, Value]]):
        terms = tuple(as_term(t) for t in terms)
        if len(terms) != relation.arity:
            from repro.errors import SchemaError

            raise SchemaError(
                f"atom over {relation} needs {relation.arity} terms, "
                f"got {len(terms)}"
            )
        self.relation = relation
        self.terms: Tuple[Term, ...] = terms

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.relation == other.relation
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash(("atom", self.relation, self.terms))

    def __repr__(self) -> str:
        return f"Atom({self})"

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation.name}({inner})"

    def is_ground(self) -> bool:
        """True iff all terms are constants."""
        return all(isinstance(t, Constant) for t in self.terms)


class Equals(Formula):
    """Equality atom ``t₁ = t₂``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Union[Term, Value], right: Union[Term, Value]):
        self.left = as_term(left)
        self.right = as_term(right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Equals)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("eq", self.left, self.right))

    def __repr__(self) -> str:
        return f"Equals({self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


class _Truth(Formula):
    """The propositional constant ⊤ or ⊥ (singletons TRUE / FALSE)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Truth) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("truth", self.value))

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"

    __str__ = __repr__


TRUE = _Truth(True)
FALSE = _Truth(False)


class Not(Formula):
    """Negation ``¬φ``."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        self.operand = operand

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("not", self.operand))

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


class _Binary(Formula):
    """Shared plumbing of binary connectives."""

    __slots__ = ("left", "right")
    _tag = "?"
    _symbol = "?"

    def __init__(self, left: Formula, right: Formula):
        self.left = left
        self.right = right

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.left == other.left  # type: ignore[union-attr]
            and self.right == other.right  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((self._tag, self.left, self.right))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left}) {self._symbol} ({self.right})"


class And(_Binary):
    """Conjunction ``φ ∧ ψ``."""

    __slots__ = ()
    _tag = "and"
    _symbol = "AND"


class Or(_Binary):
    """Disjunction ``φ ∨ ψ``."""

    __slots__ = ()
    _tag = "or"
    _symbol = "OR"


class Implies(_Binary):
    """Implication ``φ → ψ``."""

    __slots__ = ()
    _tag = "implies"
    _symbol = "->"


class _Quantifier(Formula):
    """Shared plumbing of ∃/∀."""

    __slots__ = ("variable", "body")
    _tag = "?"
    _symbol = "?"

    def __init__(self, variable: Union[Variable, str], body: Formula):
        if isinstance(variable, str):
            variable = Variable(variable)
        self.variable = variable
        self.body = body

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.variable == other.variable  # type: ignore[union-attr]
            and self.body == other.body  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((self._tag, self.variable, self.body))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.variable!r}, {self.body!r})"

    def __str__(self) -> str:
        return f"{self._symbol} {self.variable}. ({self.body})"


class Exists(_Quantifier):
    """Existential quantification ``∃x. φ``."""

    __slots__ = ()
    _tag = "exists"
    _symbol = "EXISTS"


class Forall(_Quantifier):
    """Universal quantification ``∀x. φ``."""

    __slots__ = ()
    _tag = "forall"
    _symbol = "FORALL"


def exists_all(variables: Iterable[Union[Variable, str]], body: Formula) -> Formula:
    """``∃x₁…∃x_n. body`` — fold a block of existentials.

    >>> R = RelationSymbol("R", 2)
    >>> str(exists_all(["x", "y"], Atom(R, (Variable("x"), Variable("y")))))
    'EXISTS x. (EXISTS y. (R(x, y)))'
    """
    result = body
    for var in reversed(list(variables)):
        result = Exists(var, result)
    return result


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of a (possibly empty) list; empty gives TRUE."""
    result: Formula = TRUE
    first = True
    for formula in formulas:
        result = formula if first else And(result, formula)
        first = False
    return result


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of a (possibly empty) list; empty gives FALSE."""
    result: Formula = FALSE
    first = True
    for formula in formulas:
        result = formula if first else Or(result, formula)
        first = False
    return result


def walk(formula: Formula) -> Iterator[Formula]:
    """Pre-order traversal of all subformulas (including ``formula``)."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))

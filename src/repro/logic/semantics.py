"""Model checking of FO formulas over finite instances.

Quantifiers range over the *evaluation domain* ``adom(D) ∪ adom(φ)``
(active-domain semantics).  By Fact 2.1 of the paper this is the right
domain whenever the answer relation is finite — which is the regime of
all instances of a PDB (instances are always finite), and it makes
evaluation decidable even though the universe U is infinite.

Callers who want quantification over an explicitly larger finite domain
(e.g. the truncated fact space Ω_n of Proposition 6.1) pass ``domain=``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.errors import EvaluationError
from repro.logic.analysis import constants_of, free_variables
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Variable,
    _Truth,
)
from repro.relational.facts import Fact, Value
from repro.relational.instance import Instance

Assignment = Dict[Variable, Value]


def evaluation_domain(
    formula: Formula,
    instance: Instance,
    domain: Optional[Iterable[Value]] = None,
) -> FrozenSet[Value]:
    """The set quantifiers range over: ``adom(D) ∪ adom(φ)`` by default,
    or the caller-provided ``domain`` augmented with both adoms."""
    base: Set[Value] = set(instance.active_domain())
    base |= constants_of(formula)
    if domain is not None:
        base |= set(domain)
    return frozenset(base)


def _resolve(term: Term, assignment: Assignment) -> Value:
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        try:
            return assignment[term]
        except KeyError:
            raise EvaluationError(f"unbound variable {term}") from None
    raise TypeError(f"unknown term {term!r}")


def evaluate(
    formula: Formula,
    instance: Instance,
    assignment: Optional[Assignment] = None,
    domain: Optional[Iterable[Value]] = None,
) -> bool:
    """Does ``instance ⊨ formula[assignment]`` hold?

    >>> from repro.relational import Schema, Instance
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> D = Instance([R(1), R(2)])
    >>> evaluate(parse_formula("EXISTS x. R(x)", schema), D)
    True
    >>> evaluate(parse_formula("FORALL x. R(x)", schema), D)
    True
    >>> evaluate(parse_formula("R(3)", schema), D)
    False
    """
    assignment = dict(assignment or {})
    quantifier_domain = evaluation_domain(formula, instance, domain)
    return _eval(formula, instance, assignment, quantifier_domain)


# Alias matching the paper's ``D ⊨ φ(a₁,…,a_k)`` notation.
satisfies = evaluate


def _eval(
    formula: Formula,
    instance: Instance,
    assignment: Assignment,
    domain: FrozenSet[Value],
) -> bool:
    if isinstance(formula, _Truth):
        return formula.value
    if isinstance(formula, Atom):
        args = tuple(_resolve(t, assignment) for t in formula.terms)
        return Fact(formula.relation, args) in instance
    if isinstance(formula, Equals):
        return _resolve(formula.left, assignment) == _resolve(
            formula.right, assignment
        )
    if isinstance(formula, Not):
        return not _eval(formula.operand, instance, assignment, domain)
    if isinstance(formula, And):
        return _eval(formula.left, instance, assignment, domain) and _eval(
            formula.right, instance, assignment, domain
        )
    if isinstance(formula, Or):
        return _eval(formula.left, instance, assignment, domain) or _eval(
            formula.right, instance, assignment, domain
        )
    if isinstance(formula, Implies):
        return (not _eval(formula.left, instance, assignment, domain)) or _eval(
            formula.right, instance, assignment, domain
        )
    if isinstance(formula, (Exists, Forall)):
        # Save any outer binding the quantifier shadows (∃x … ∃x …) and
        # restore it afterwards — deleting would un-bind the outer x.
        variable = formula.variable
        missing = object()
        saved = assignment.get(variable, missing)
        is_exists = isinstance(formula, Exists)
        result = not is_exists
        for value in domain:
            assignment[variable] = value
            truth = _eval(formula.body, instance, assignment, domain)
            if truth == is_exists:  # witness found / counterexample found
                result = is_exists
                break
        if saved is missing:
            assignment.pop(variable, None)
        else:
            assignment[variable] = saved
        return result
    raise TypeError(f"unknown formula node {formula!r}")


def answer_tuples(
    formula: Formula,
    instance: Instance,
    variables: Optional[Tuple[Variable, ...]] = None,
    domain: Optional[Iterable[Value]] = None,
) -> Set[Tuple[Value, ...]]:
    """The answer relation ``φ(D)``: all tuples ``ā`` over the evaluation
    domain with ``D ⊨ φ(ā)`` (paper §2.1).

    ``variables`` fixes the output column order; by default the free
    variables sorted by name.

    >>> from repro.relational import Schema, Instance
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> R = schema["R"]
    >>> D = Instance([R(1, 2), R(2, 2)])
    >>> sorted(answer_tuples(parse_formula("R(x, 2)", schema), D))
    [(1,), (2,)]
    """
    if variables is None:
        variables = tuple(sorted(free_variables(formula), key=lambda v: v.name))
    else:
        missing = free_variables(formula) - set(variables)
        if missing:
            raise EvaluationError(
                f"free variables {sorted(v.name for v in missing)} not listed"
            )
    quantifier_domain = evaluation_domain(formula, instance, domain)
    answers: Set[Tuple[Value, ...]] = set()
    k = len(variables)
    if k == 0:
        if _eval(formula, instance, {}, quantifier_domain):
            answers.add(())
        return answers
    # Enumerate assignments over the evaluation domain (Fact 2.1 justifies
    # restricting to adom(D) ∪ adom(φ) when the answer is finite).
    values = sorted(quantifier_domain, key=repr)
    stack: list = [{}]
    for variable in variables:
        next_stack = []
        for partial in stack:
            for value in values:
                extended = dict(partial)
                extended[variable] = value
                next_stack.append(extended)
        stack = next_stack
    for assignment in stack:
        if _eval(formula, instance, dict(assignment), quantifier_domain):
            answers.add(tuple(assignment[v] for v in variables))
    return answers

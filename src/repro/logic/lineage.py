"""Boolean lineage (event expressions / provenance) of queries on
tuple-independent fact tables.

The *lineage* of a Boolean query Q over a set of possible facts is a
Boolean function over fact-indicator variables that evaluates to Q's
truth value in every possible world.  Exact query probability is then
the probability of the lineage under independent fact marginals —
computed in ``repro.finite.lineage_eval`` by Shannon expansion with
memoization (a poor man's ROBDD, adequate at bench scales).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.errors import EvaluationError
from repro.logic.analysis import constants_of, free_variables
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Variable,
    _Truth,
)
from repro.relational.facts import Fact, Value, domain_sort_key
from repro.relational.index import FactIndex


class Lineage:
    """An immutable Boolean expression over fact variables.

    Nodes are ("var", fact), ("true",), ("false",), ("not", child),
    ("and", children...), ("or", children...) — encoded as nested tuples
    so they hash cheaply and structurally identical sub-lineages share
    cache entries during Shannon expansion.
    """

    __slots__ = ("node",)

    def __init__(self, node: tuple):
        self.node = node

    # ----------------------------------------------------------- constructors
    @classmethod
    def true(cls) -> "Lineage":
        return _TRUE

    @classmethod
    def false(cls) -> "Lineage":
        return _FALSE

    @classmethod
    def var(cls, fact: Fact) -> "Lineage":
        return cls(("var", fact))

    @classmethod
    def conj(cls, children: Iterable["Lineage"]) -> "Lineage":
        flat = []
        for child in children:
            if child.node == ("false",):
                return _FALSE
            if child.node == ("true",):
                continue
            if child.node[0] == "and":
                flat.extend(Lineage(n) for n in child.node[1])
            else:
                flat.append(child)
        unique = _dedupe(flat)
        if not unique:
            return _TRUE
        if len(unique) == 1:
            return unique[0]
        return cls(("and", tuple(sorted((c.node for c in unique), key=repr))))

    @classmethod
    def disj(cls, children: Iterable["Lineage"]) -> "Lineage":
        flat = []
        for child in children:
            if child.node == ("true",):
                return _TRUE
            if child.node == ("false",):
                continue
            if child.node[0] == "or":
                flat.extend(Lineage(n) for n in child.node[1])
            else:
                flat.append(child)
        unique = _dedupe(flat)
        if not unique:
            return _FALSE
        if len(unique) == 1:
            return unique[0]
        return cls(("or", tuple(sorted((c.node for c in unique), key=repr))))

    @classmethod
    def negation(cls, child: "Lineage") -> "Lineage":
        if child.node == ("true",):
            return _FALSE
        if child.node == ("false",):
            return _TRUE
        if child.node[0] == "not":
            return cls(child.node[1])
        return cls(("not", child.node))

    # ---------------------------------------------------------------- queries
    def facts(self) -> FrozenSet[Fact]:
        """All fact variables mentioned in the expression."""
        found: Set[Fact] = set()
        stack = [self.node]
        while stack:
            node = stack.pop()
            tag = node[0]
            if tag == "var":
                found.add(node[1])
            elif tag == "not":
                stack.append(node[1])
            elif tag in ("and", "or"):
                stack.extend(node[1])
        return frozenset(found)

    def evaluate(self, world: AbstractSet[Fact]) -> bool:
        """Truth value when exactly the facts in ``world`` are present.

        >>> from repro.relational import RelationSymbol
        >>> R = RelationSymbol("R", 1)
        >>> expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
        >>> expr.evaluate({R(2)})
        True
        >>> expr.evaluate(set())
        False
        """
        return _eval_node(self.node, world)

    def condition(self, fact: Fact, present: bool) -> "Lineage":
        """The cofactor: substitute a truth value for one fact variable.

        This is the Shannon-expansion step used by exact evaluation.
        """
        return Lineage(_condition_many(self.node, {fact: present}))

    def condition_many(self, assignment: Mapping[Fact, bool]) -> "Lineage":
        """Condition on several fact variables in one pass.

        Equivalent to chaining :meth:`condition` per fact but walks the
        expression once — the block-expansion step of BID evaluation
        conditions on every alternative of a block at a time.

        >>> from repro.relational import RelationSymbol
        >>> R = RelationSymbol("R", 1)
        >>> expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
        >>> expr.condition_many({R(1): False, R(2): False}).is_constant()
        False
        """
        if not assignment:
            return self
        return Lineage(_condition_many(self.node, assignment))

    def is_constant(self) -> Optional[bool]:
        """True/False if the expression is the constant ⊤/⊥, else None."""
        if self.node == ("true",):
            return True
        if self.node == ("false",):
            return False
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Lineage) and self.node == other.node

    def __hash__(self) -> int:
        return hash(self.node)

    def __repr__(self) -> str:
        return f"Lineage({_format(self.node)})"


def _dedupe(children: Sequence[Lineage]) -> Tuple[Lineage, ...]:
    seen: Set[tuple] = set()
    out = []
    for child in children:
        if child.node not in seen:
            seen.add(child.node)
            out.append(child)
    return tuple(out)


_TRUE = Lineage(("true",))
_FALSE = Lineage(("false",))


def _eval_node(node: tuple, world: AbstractSet[Fact]) -> bool:
    tag = node[0]
    if tag == "true":
        return True
    if tag == "false":
        return False
    if tag == "var":
        return node[1] in world
    if tag == "not":
        return not _eval_node(node[1], world)
    if tag == "and":
        return all(_eval_node(child, world) for child in node[1])
    if tag == "or":
        return any(_eval_node(child, world) for child in node[1])
    raise EvaluationError(f"unknown lineage node {node!r}")


def _condition_many(node: tuple, assignment: Mapping[Fact, bool]) -> tuple:
    tag = node[0]
    if tag in ("true", "false"):
        return node
    if tag == "var":
        present = assignment.get(node[1])
        if present is None:
            return node
        return ("true",) if present else ("false",)
    if tag == "not":
        inner = Lineage.negation(Lineage(_condition_many(node[1], assignment)))
        return inner.node
    if tag == "and":
        children = [Lineage(_condition_many(c, assignment)) for c in node[1]]
        return Lineage.conj(children).node
    if tag == "or":
        children = [Lineage(_condition_many(c, assignment)) for c in node[1]]
        return Lineage.disj(children).node
    raise EvaluationError(f"unknown lineage node {node!r}")


def _format(node: tuple) -> str:
    tag = node[0]
    if tag == "true":
        return "⊤"
    if tag == "false":
        return "⊥"
    if tag == "var":
        return str(node[1])
    if tag == "not":
        return f"¬{_format(node[1])}"
    joiner = " ∧ " if tag == "and" else " ∨ "
    return "(" + joiner.join(_format(c) for c in node[1]) + ")"


def lineage_of(
    formula: Formula,
    possible_facts: AbstractSet[Fact],
    domain: Optional[Iterable[Value]] = None,
    assignment: Optional[Dict[Variable, Value]] = None,
    index=None,
    engine: str = "auto",
) -> Lineage:
    """Lineage of a Boolean FO formula over a tuple-independent fact set.

    Quantifiers are expanded over ``domain`` (default: the active domain
    of ``possible_facts`` plus the formula's constants).  Atoms whose
    ground fact is not a possible fact are the constant ⊥ — the
    closed-world reading of the *finite* table; the paper's Section 6
    machinery applies this to truncations Ω_n of infinite PDBs.

    Positive-existential formulas take the set-at-a-time fast path
    (:mod:`repro.logic.ground`): atoms probe per-relation hash indexes,
    conjunctions hash-join, ∃/∨ aggregate per-group disjunctions — the
    resulting expression is bit-identical to brute-force quantifier
    expansion, just never materializing the mostly-⊥ assignment space.
    Negation, →, ∀ and unbound free variables fall back to expansion
    (``grounding.fallbacks`` counts those).

    ``index`` passes a prebuilt
    :class:`~repro.relational.index.FactIndex` over exactly
    ``possible_facts`` — callers grounding the same fact set repeatedly
    (answer fan-outs, growing truncations via
    :meth:`~repro.relational.index.FactIndex.extend`) reuse one index.
    ``engine`` forces a path: ``"auto"`` (default), ``"join"`` (raise
    :class:`~repro.errors.EvaluationError` if the formula is outside the
    fast-path fragment), or ``"expansion"``.

    >>> from repro.relational import RelationSymbol
    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> expr = lineage_of(parse_formula("EXISTS x. R(x)", schema),
    ...                   {R(1), R(2)})
    >>> sorted(str(f) for f in expr.facts())
    ['R(1)', 'R(2)']
    """
    if domain is None:
        values: Set[Value] = set()
        for fact in possible_facts:
            values.update(fact.args)
        values |= constants_of(formula)
        domain_set = frozenset(values)
    else:
        domain_set = frozenset(domain)
    assignment_map = dict(assignment or {})
    if engine not in ("auto", "join", "expansion"):
        raise EvaluationError(f"unknown grounding engine {engine!r}")
    if engine != "expansion":
        from repro.logic.ground import GroundingEngine, supports_set_at_a_time

        fast = (
            bool(domain_set)
            and supports_set_at_a_time(formula)
            and free_variables(formula) <= assignment_map.keys()
        )
        if fast:
            with obs.phase("ground"):
                fact_index = (
                    index if index is not None else FactIndex(possible_facts))
                grounder = GroundingEngine(fact_index, domain_set)
                expr = grounder.lineage(formula, assignment_map)
            if grounder.probes:
                obs.incr("grounding.probes", grounder.probes)
            if grounder.joins:
                obs.incr("grounding.joins", grounder.joins)
            return expr
        if engine == "join":
            raise EvaluationError(
                "formula is outside the set-at-a-time fragment "
                "(positive-existential, all free variables bound)"
            )
    obs.incr("grounding.fallbacks")
    return _lineage(formula, possible_facts, domain_set, assignment_map)


def _lineage(
    formula: Formula,
    possible: AbstractSet[Fact],
    domain: FrozenSet[Value],
    assignment: Dict[Variable, Value],
) -> Lineage:
    if isinstance(formula, _Truth):
        return _TRUE if formula.value else _FALSE
    if isinstance(formula, Atom):
        args = []
        for term in formula.terms:
            if isinstance(term, Constant):
                args.append(term.value)
            elif isinstance(term, Variable):
                if term not in assignment:
                    raise EvaluationError(f"unbound variable {term} in lineage")
                args.append(assignment[term])
        fact = Fact(formula.relation, args)
        return Lineage.var(fact) if fact in possible else _FALSE
    if isinstance(formula, Equals):
        def resolve(term):
            if isinstance(term, Constant):
                return term.value
            if term not in assignment:
                raise EvaluationError(f"unbound variable {term} in lineage")
            return assignment[term]

        return _TRUE if resolve(formula.left) == resolve(formula.right) else _FALSE
    if isinstance(formula, Not):
        return Lineage.negation(
            _lineage(formula.operand, possible, domain, assignment)
        )
    if isinstance(formula, And):
        return Lineage.conj(
            [
                _lineage(formula.left, possible, domain, assignment),
                _lineage(formula.right, possible, domain, assignment),
            ]
        )
    if isinstance(formula, Or):
        return Lineage.disj(
            [
                _lineage(formula.left, possible, domain, assignment),
                _lineage(formula.right, possible, domain, assignment),
            ]
        )
    if isinstance(formula, Implies):
        return Lineage.disj(
            [
                Lineage.negation(
                    _lineage(formula.left, possible, domain, assignment)
                ),
                _lineage(formula.right, possible, domain, assignment),
            ]
        )
    if isinstance(formula, (Exists, Forall)):
        # Save/restore any shadowed outer binding (∃x … ∃x …).
        variable = formula.variable
        missing = object()
        saved = assignment.get(variable, missing)
        children = []
        for value in sorted(domain, key=domain_sort_key):
            assignment[variable] = value
            children.append(_lineage(formula.body, possible, domain, assignment))
        if saved is missing:
            assignment.pop(variable, None)
        else:
            assignment[variable] = saved
        if isinstance(formula, Exists):
            return Lineage.disj(children)
        return Lineage.conj(children)
    raise TypeError(f"unknown formula node {formula!r}")

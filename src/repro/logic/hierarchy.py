"""Hierarchical queries and safe plans (Dalvi–Suciu dichotomy).

Proposition 6.1 of the paper reduces approximate evaluation on infinite
tuple-independent PDBs to "a traditional closed-world query evaluation
algorithm for finite tuple-independent PDBs".  For self-join-free
conjunctive queries the classical result is a dichotomy: the query
probability is computable in polynomial time iff the query is
*hierarchical* — for every two existential variables x, y, the sets of
atoms containing them are nested or disjoint.  This module implements
the hierarchy test and compiles hierarchical queries to *safe plans*,
trees of extensional operators evaluated by ``repro.finite.lifted``:

* ``FactLeaf`` — a ground atom; probability is the fact's marginal.
* ``IndependentJoin`` — conjunction of subplans over disjoint fact sets;
  probabilities multiply.
* ``IndependentProject`` — existential quantification over a root
  variable x occurring in *all* atoms; ``P = 1 − Π_a (1 − P(Q[x↦a]))``.
* ``IndependentUnion`` — disjunction of subplans over disjoint fact
  sets (used for UCQs whose disjuncts share no relation symbol).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import UnsafeQueryError
from repro.logic.normalform import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.logic.syntax import Atom, Constant, Variable


def _atom_variables(atom: Atom) -> FrozenSet[Variable]:
    return frozenset(t for t in atom.terms if isinstance(t, Variable))


def is_self_join_free(cq: ConjunctiveQuery) -> bool:
    """True iff no relation symbol occurs in two different atoms.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> x = Variable("x")
    >>> is_self_join_free(ConjunctiveQuery([Atom(R, (x,))]))
    True
    >>> is_self_join_free(ConjunctiveQuery(
    ...     [Atom(R, (x,)), Atom(R, (Constant(1),))]))
    False
    """
    symbols = [atom.relation for atom in cq.atoms]
    return len(symbols) == len(set(symbols))


def is_hierarchical(cq: ConjunctiveQuery) -> bool:
    """The hierarchy test on existential variables.

    For all existential x, y: ``at(x) ⊆ at(y)``, ``at(y) ⊆ at(x)`` or
    ``at(x) ∩ at(y) = ∅``, where ``at(x)`` is the set of atoms containing
    x.  Head variables are ignored (they are constants at evaluation
    time).

    >>> from repro.relational import RelationSymbol
    >>> R, S, T = (RelationSymbol(n, a) for n, a in
    ...            [("R", 1), ("S", 2), ("T", 1)])
    >>> x, y = Variable("x"), Variable("y")
    >>> is_hierarchical(ConjunctiveQuery(
    ...     [Atom(R, (x,)), Atom(S, (x, y))]))
    True
    >>> is_hierarchical(ConjunctiveQuery(            # the classic H0
    ...     [Atom(R, (x,)), Atom(S, (x, y)), Atom(T, (y,))]))
    False
    """
    existential = cq.existential_variables
    at: Dict[Variable, Set[int]] = {v: set() for v in existential}
    for index, atom in enumerate(cq.atoms):
        for variable in _atom_variables(atom):
            if variable in at:
                at[variable].add(index)
    variables = list(existential)
    for i, x in enumerate(variables):
        for y in variables[i + 1:]:
            ax, ay = at[x], at[y]
            if not (ax <= ay or ay <= ax or not (ax & ay)):
                return False
    return True


# ------------------------------------------------------------------ plan AST
class SafePlan:
    """Base class of safe-plan nodes."""

    __slots__ = ()


class FactLeaf(SafePlan):
    """A ground atom; evaluates to its marginal probability."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        if not atom.is_ground():
            raise UnsafeQueryError(f"FactLeaf requires a ground atom, got {atom}")
        self.atom = atom

    def __repr__(self) -> str:
        return f"FactLeaf({self.atom})"


class IndependentJoin(SafePlan):
    """Conjunction of independent subplans: probabilities multiply."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[SafePlan]):
        self.children: Tuple[SafePlan, ...] = tuple(children)

    def __repr__(self) -> str:
        return f"IndependentJoin({list(self.children)})"


class IndependentUnion(SafePlan):
    """Disjunction of independent subplans:
    ``P = 1 − Π (1 − P(child))``."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[SafePlan]):
        self.children: Tuple[SafePlan, ...] = tuple(children)

    def __repr__(self) -> str:
        return f"IndependentUnion({list(self.children)})"


class IndependentProject(SafePlan):
    """Existential quantification over a root variable.

    ``subquery`` is the CQ with the variable still free; evaluation
    grounds it with every active-domain value and combines
    ``1 − Π (1 − P)``.
    """

    __slots__ = ("variable", "subquery")

    def __init__(self, variable: Variable, subquery: ConjunctiveQuery):
        self.variable = variable
        self.subquery = subquery

    def __repr__(self) -> str:
        return f"IndependentProject({self.variable}, {self.subquery!r})"


def _connected_components(cq: ConjunctiveQuery) -> List[Tuple[Atom, ...]]:
    """Partition atoms into components connected via shared existential
    variables."""
    existential = cq.existential_variables
    n = len(cq.atoms)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    by_variable: Dict[Variable, List[int]] = {}
    for index, atom in enumerate(cq.atoms):
        for variable in _atom_variables(atom) & existential:
            by_variable.setdefault(variable, []).append(index)
    for indices in by_variable.values():
        for other in indices[1:]:
            union(indices[0], other)
    groups: Dict[int, List[Atom]] = {}
    for index, atom in enumerate(cq.atoms):
        groups.setdefault(find(index), []).append(atom)
    return [tuple(group) for group in groups.values()]


def _root_variables(cq: ConjunctiveQuery) -> FrozenSet[Variable]:
    """Existential variables occurring in every atom of the CQ."""
    existential = cq.existential_variables
    if not existential:
        return frozenset()
    common = set(existential)
    for atom in cq.atoms:
        common &= _atom_variables(atom)
    return frozenset(common)


def safe_plan(cq: ConjunctiveQuery) -> SafePlan:
    """Compile a Boolean, self-join-free hierarchical CQ to a safe plan.

    Raises :class:`UnsafeQueryError` if the query has head variables,
    self-joins, or is not hierarchical (e.g. the classic unsafe query
    ``H₀ = ∃x∃y. R(x) ∧ S(x, y) ∧ T(y)``).

    >>> from repro.relational import RelationSymbol
    >>> R, S = RelationSymbol("R", 1), RelationSymbol("S", 2)
    >>> x, y = Variable("x"), Variable("y")
    >>> plan = safe_plan(ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, y))]))
    >>> isinstance(plan, IndependentProject)
    True
    """
    if cq.head_variables:
        raise UnsafeQueryError(
            "safe_plan expects a Boolean CQ; ground the head variables first"
        )
    if not is_self_join_free(cq):
        raise UnsafeQueryError(f"query has self-joins: {cq!r}")
    if not is_hierarchical(cq):
        raise UnsafeQueryError(f"query is not hierarchical: {cq!r}")
    return _plan(cq)


def _plan(cq: ConjunctiveQuery) -> SafePlan:
    # 1. All atoms ground: independent join of fact leaves.
    if not cq.existential_variables:
        leaves = [FactLeaf(atom) for atom in cq.atoms]
        if len(leaves) == 1:
            return leaves[0]
        return IndependentJoin(leaves)
    # 2. Multiple connected components: independent join.
    components = _connected_components(cq)
    if len(components) > 1:
        return IndependentJoin(
            [_plan(ConjunctiveQuery(atoms)) for atoms in components]
        )
    # 3. Single component: a root variable must exist (hierarchical +
    #    connected self-join-free CQs always have one).
    roots = _root_variables(cq)
    if not roots:
        raise UnsafeQueryError(
            f"no root variable in connected component {cq!r}; "
            "query is not hierarchical"
        )
    root = sorted(roots, key=lambda v: v.name)[0]
    return IndependentProject(root, cq)


def safe_plan_ucq(ucq: UnionOfConjunctiveQueries) -> SafePlan:
    """Compile a Boolean UCQ whose disjuncts mention pairwise disjoint
    relation symbols (hence are independent) to a safe plan.

    General UCQ lifted inference (with shared symbols) requires
    inclusion–exclusion / cancellation machinery beyond this engine;
    such queries raise :class:`UnsafeQueryError` and callers fall back
    to lineage-based exact evaluation.
    """
    symbol_sets = [
        frozenset(atom.relation for atom in cq.atoms) for cq in ucq.disjuncts
    ]
    for i, left in enumerate(symbol_sets):
        for right in symbol_sets[i + 1:]:
            if left & right:
                raise UnsafeQueryError(
                    "UCQ disjuncts share relation symbols; not supported "
                    "by the independent-union plan"
                )
    children = [safe_plan(cq) for cq in ucq.disjuncts]
    if len(children) == 1:
        return children[0]
    return IndependentUnion(children)

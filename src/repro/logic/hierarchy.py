"""Safe plans for UCQs (Dalvi–Suciu lifted inference).

Proposition 6.1 of the paper reduces approximate evaluation on infinite
tuple-independent PDBs to "a traditional closed-world query evaluation
algorithm for finite tuple-independent PDBs".  The classical result for
that finite problem is the Dalvi–Suciu dichotomy: a UCQ is either *safe*
— its probability is computed in polynomial time by an extensional plan
of independence-exploiting operators — or #P-hard.  This module is the
plan compiler.  It applies, in order:

* **minimization** — every (sub)query is reduced to its core first
  (:func:`~repro.logic.normalform.minimize_cq` /
  :func:`~repro.logic.normalform.minimize_ucq`), so redundant self-joins
  like ``R(x) ∧ R(1)`` and subsumed disjuncts disappear before safety is
  judged;
* **shattering** — atoms of one relation with pairwise-incompatible
  constant patterns partition the relation's facts and are treated as
  distinct symbols; compatible-but-different patterns are rejected
  (raising :class:`UnsafeQueryError`) rather than silently mishandled;
* **independent join** — connected components (via shared unbound
  variables) over disjoint fact slices multiply;
* **independent project** — a *separator* variable occurring in every
  atom (at consistent positions within each shattered symbol) is
  grounded: ``P(∃x φ) = 1 − Π_a (1 − P(φ[x↦a]))``.  The rule is applied
  at CQ level and, by unifying one variable per disjunct, at UCQ level;
* **independent union** — disjuncts over disjoint fact slices combine as
  ``1 − Π (1 − P)``;
* **inclusion–exclusion** — overlapping disjuncts expand into signed
  conjunction terms; terms are minimized, grouped up to equivalence and
  cancelled (the Möbius-style step that makes e.g. ``(R∧V) ∨ (R∧T)``
  safe) before each surviving term is planned strictly.

A query on which every rule fails raises :class:`UnsafeQueryError` with
the minimal offending subquery attached (``exc.subquery``).  With
``partial=True`` the compiler instead wraps unsafe top-level components
in :class:`UnsafeLeaf` nodes, producing a hybrid plan whose safe parts
evaluate extensionally while the residue is delegated to an intensional
engine by ``repro.finite.lifted``.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.errors import UnsafeQueryError
from repro.logic.normalform import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    cq_equivalent,
    minimize_cq,
    minimize_ucq,
    rename_cq_apart,
)
from repro.logic.syntax import Atom, Constant, Variable

#: Inclusion–exclusion expands ``2^k − 1`` subset terms for ``k``
#: overlapping disjuncts; past this budget the solver reports the UCQ
#: unsafe instead of building an exponential plan.
MAX_INCLUSION_EXCLUSION = 7

#: A shatter key: ``(relation, ((position, constant), …))`` — the
#: constant pattern that slices a relation's facts.
ShatterKey = Tuple[object, Tuple[Tuple[int, object], ...]]


def _atom_variables(atom: Atom) -> FrozenSet[Variable]:
    return frozenset(t for t in atom.terms if isinstance(t, Variable))


def is_self_join_free(cq: ConjunctiveQuery) -> bool:
    """True iff no relation symbol occurs in two different atoms.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> x = Variable("x")
    >>> is_self_join_free(ConjunctiveQuery([Atom(R, (x,))]))
    True
    >>> is_self_join_free(ConjunctiveQuery(
    ...     [Atom(R, (x,)), Atom(R, (Constant(1),))]))
    False
    """
    symbols = [atom.relation for atom in cq.atoms]
    return len(symbols) == len(set(symbols))


def is_hierarchical(cq: ConjunctiveQuery) -> bool:
    """The hierarchy test on existential variables.

    For all existential x, y: ``at(x) ⊆ at(y)``, ``at(y) ⊆ at(x)`` or
    ``at(x) ∩ at(y) = ∅``, where ``at(x)`` is the set of atoms containing
    x.  Head variables are ignored (they are constants at evaluation
    time).

    >>> from repro.relational import RelationSymbol
    >>> R, S, T = (RelationSymbol(n, a) for n, a in
    ...            [("R", 1), ("S", 2), ("T", 1)])
    >>> x, y = Variable("x"), Variable("y")
    >>> is_hierarchical(ConjunctiveQuery(
    ...     [Atom(R, (x,)), Atom(S, (x, y))]))
    True
    >>> is_hierarchical(ConjunctiveQuery(            # the classic H0
    ...     [Atom(R, (x,)), Atom(S, (x, y)), Atom(T, (y,))]))
    False
    """
    existential = cq.existential_variables
    at: Dict[Variable, Set[int]] = {v: set() for v in existential}
    for index, atom in enumerate(cq.atoms):
        for variable in _atom_variables(atom):
            if variable in at:
                at[variable].add(index)
    variables = list(existential)
    for i, x in enumerate(variables):
        for y in variables[i + 1:]:
            ax, ay = at[x], at[y]
            if not (ax <= ay or ay <= ax or not (ax & ay)):
                return False
    return True


# ------------------------------------------------------------------ plan AST
class SafePlan:
    """Base class of safe-plan nodes."""

    __slots__ = ()


class FactLeaf(SafePlan):
    """A single atom; its variables are bound by enclosing projects at
    evaluation time, and the grounded fact's marginal is the value."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        self.atom = atom

    def __repr__(self) -> str:
        return f"FactLeaf({self.atom})"


class IndependentJoin(SafePlan):
    """Conjunction of independent subplans: probabilities multiply."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[SafePlan]):
        self.children: Tuple[SafePlan, ...] = tuple(children)

    def __repr__(self) -> str:
        return f"IndependentJoin({list(self.children)})"


class IndependentUnion(SafePlan):
    """Disjunction of independent subplans:
    ``P = 1 − Π (1 − P(child))``."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[SafePlan]):
        self.children: Tuple[SafePlan, ...] = tuple(children)

    def __repr__(self) -> str:
        return f"IndependentUnion({list(self.children)})"


class IndependentProject(SafePlan):
    """Existential quantification over a separator variable.

    ``subquery`` (a CQ, or a UCQ for the union-level rule) keeps the
    variable free and drives candidate-value discovery; ``child`` is the
    plan of the subquery with the variable bound, evaluated once per
    candidate value: ``P = 1 − Π_a (1 − P(child[x↦a]))``.
    """

    __slots__ = ("variable", "subquery", "child")

    def __init__(
        self,
        variable: Variable,
        subquery: Union[ConjunctiveQuery, UnionOfConjunctiveQueries],
        child: SafePlan,
    ):
        self.variable = variable
        self.subquery = subquery
        self.child = child

    def __repr__(self) -> str:
        return f"IndependentProject({self.variable}, {self.subquery!r})"


class InclusionExclusion(SafePlan):
    """Signed sum over overlapping-disjunct conjunction terms:
    ``P = Σ coefficient · P(term)`` — coefficients already carry the
    Möbius-style cancellation of equivalent terms."""

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[Tuple[int, SafePlan]]):
        self.terms: Tuple[Tuple[int, SafePlan], ...] = tuple(
            (int(c), p) for c, p in terms)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c:+d}*{p!r}" for c, p in self.terms)
        return f"InclusionExclusion({inner})"


class UnsafeLeaf(SafePlan):
    """A top-level component with no safe plan, kept in a *partial* plan
    so the rest of the query still evaluates extensionally.  Evaluation
    either raises :class:`UnsafeQueryError` or delegates the component's
    formula to a caller-supplied fallback engine."""

    __slots__ = ("subquery",)

    def __init__(
        self, subquery: Union[ConjunctiveQuery, UnionOfConjunctiveQueries]
    ):
        self.subquery = subquery

    def formula(self):
        return self.subquery.to_formula()

    def __repr__(self) -> str:
        return f"UnsafeLeaf({self.subquery!r})"


# --------------------------------------------------------------- shattering
def shatter_key(atom: Atom) -> ShatterKey:
    """The constant pattern of an atom: which positions it pins to which
    constants.  Two atoms of one relation with *incompatible* patterns
    (some position pinned to different constants) can never ground to
    the same fact, so they act as distinct — shattered — symbols.

    >>> from repro.relational import RelationSymbol
    >>> S = RelationSymbol("S", 2)
    >>> x = Variable("x")
    >>> shatter_key(Atom(S, (x, Constant(3))))[1]
    ((1, 3),)
    """
    return (
        atom.relation,
        tuple(
            (i, t.value)
            for i, t in enumerate(atom.terms)
            if isinstance(t, Constant)
        ),
    )


def keys_compatible(left: ShatterKey, right: ShatterKey) -> bool:
    """Whether two shatter keys of one relation can share a fact: no
    position pinned to different constants by the two patterns."""
    if left[0] != right[0]:
        return False
    pattern = dict(left[1])
    for position, value in right[1]:
        if position in pattern and pattern[position] != value:
            return False
    return True


def _check_shatterable(cq: ConjunctiveQuery) -> None:
    """Reject CQs whose repeated relation symbols cannot be shattered:
    two atoms of one relation with compatible but different constant
    patterns overlap on some facts without coinciding, which the
    extensional operators cannot factor."""
    keys_by_relation: Dict[object, List[ShatterKey]] = {}
    for atom in cq.atoms:
        key = shatter_key(atom)
        bucket = keys_by_relation.setdefault(atom.relation, [])
        if key not in bucket:
            bucket.append(key)
    shattered = False
    for relation, keys in keys_by_relation.items():
        if len(keys) < 2:
            continue
        for i, left in enumerate(keys):
            for right in keys[i + 1:]:
                if keys_compatible(left, right):
                    raise UnsafeQueryError(
                        f"atoms of {relation} have overlapping constant "
                        f"patterns; the self-join cannot be shattered",
                        subquery=cq,
                    )
        shattered = True
    if shattered:
        obs.incr("lifted.shatters")


# ----------------------------------------------------------------- utilities
def _atom_sort_key(atom: Atom):
    return (
        atom.relation.name,
        atom.relation.arity,
        tuple(
            ("c", repr(t.value)) if isinstance(t, Constant) else ("v", t.name)
            for t in atom.terms
        ),
    )


def _canonical_atoms(atoms: Sequence[Atom]) -> Tuple[Atom, ...]:
    """Deduplicate and sort atoms into a stable order, so plan
    construction is deterministic across runs."""
    return tuple(sorted(dict.fromkeys(atoms), key=_atom_sort_key))


def _components(
    atoms: Sequence[Atom], link_variables: FrozenSet[Variable]
) -> List[Tuple[Atom, ...]]:
    """Partition atoms into components connected via shared
    ``link_variables`` (the unbound existential variables)."""
    n = len(atoms)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    by_variable: Dict[Variable, List[int]] = {}
    for index, atom in enumerate(atoms):
        for variable in _atom_variables(atom) & link_variables:
            by_variable.setdefault(variable, []).append(index)
    for indices in by_variable.values():
        root = find(indices[0])
        for other in indices[1:]:
            parent[find(other)] = root
    groups: Dict[int, List[Atom]] = {}
    for index, atom in enumerate(atoms):
        groups.setdefault(find(index), []).append(atom)
    return [tuple(group) for group in groups.values()]


def _connected_components(cq: ConjunctiveQuery) -> List[Tuple[Atom, ...]]:
    """Components of a CQ connected via shared existential variables
    (compatibility wrapper around :func:`_components`)."""
    return _components(cq.atoms, cq.existential_variables)


def _root_variables(cq: ConjunctiveQuery) -> FrozenSet[Variable]:
    """Existential variables occurring in every atom of the CQ."""
    existential = cq.existential_variables
    if not existential:
        return frozenset()
    common = set(existential)
    for atom in cq.atoms:
        common &= _atom_variables(atom)
    return frozenset(common)


def _variable_positions(atom: Atom, variable: Variable) -> Tuple[int, ...]:
    return tuple(i for i, t in enumerate(atom.terms) if t == variable)


def _cq_separators(
    atoms: Sequence[Atom], candidates: FrozenSet[Variable]
) -> List[Variable]:
    """Separator variables of a connected component: variables occurring
    in *every* atom, at identical positions within each shattered symbol
    — so grounding the variable with distinct values touches disjoint
    fact slices."""
    separators: List[Variable] = []
    for variable in sorted(candidates, key=lambda v: v.name):
        positions_by_key: Dict[ShatterKey, Tuple[int, ...]] = {}
        ok = True
        for atom in atoms:
            positions = _variable_positions(atom, variable)
            if not positions:
                ok = False
                break
            key = shatter_key(atom)
            previous = positions_by_key.setdefault(key, positions)
            if previous != positions:
                ok = False
                break
        if ok:
            separators.append(variable)
    return separators


def _check_component_independence(
    components: Sequence[Tuple[Atom, ...]], cq: ConjunctiveQuery
) -> None:
    """Components joined multiplicatively must touch disjoint fact
    slices: no two components may contain the same shattered symbol
    (identical shatter key)."""
    key_sets = [
        {shatter_key(atom) for atom in component} for component in components
    ]
    for i, left in enumerate(key_sets):
        for right in key_sets[i + 1:]:
            if left & right:
                raise UnsafeQueryError(
                    "connected components share a relation slice and are "
                    f"not independent: {cq!r}",
                    subquery=cq,
                )


def _check_leaf_aliasing(
    atoms: Sequence[Atom], cq: ConjunctiveQuery
) -> None:
    """Distinct fully-bound atoms with the same shatter key may ground to
    the same fact under some binding, which a product of leaves would
    double-count — refuse the plan (the intensional fallback handles the
    correlation)."""
    seen: Dict[ShatterKey, Atom] = {}
    for atom in atoms:
        key = shatter_key(atom)
        if key in seen and seen[key] != atom:
            raise UnsafeQueryError(
                f"bound atoms {seen[key]} and {atom} may alias the same "
                "fact; the join is not independent",
                subquery=cq,
            )
        seen[key] = atom


def _rename_variable_in_cq(
    cq: ConjunctiveQuery, old: Variable, new: Variable
) -> ConjunctiveQuery:
    atoms = [
        Atom(
            atom.relation,
            tuple(new if t == old else t for t in atom.terms),
        )
        for atom in cq.atoms
    ]
    return ConjunctiveQuery(atoms, cq.head_variables)


# ------------------------------------------------------------- CQ planning
def safe_plan(cq: ConjunctiveQuery, partial: bool = False) -> SafePlan:
    """Compile a Boolean CQ to a safe plan, or raise
    :class:`UnsafeQueryError` (carrying the offending subquery) when the
    dichotomy places it on the hard side — e.g. the classic
    ``H₀ = ∃x∃y. R(x) ∧ S(x, y) ∧ T(y)``.

    The CQ is minimized first, so redundant self-joins are no obstacle:

    >>> from repro.relational import RelationSymbol
    >>> R, S = RelationSymbol("R", 1), RelationSymbol("S", 2)
    >>> x, y = Variable("x"), Variable("y")
    >>> plan = safe_plan(ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, y))]))
    >>> isinstance(plan, IndependentProject)
    True
    >>> safe_plan(ConjunctiveQuery([Atom(R, (x,)), Atom(R, (Constant(1),))]))
    FactLeaf(R(1))

    With ``partial=True`` unsafe top-level components become
    :class:`UnsafeLeaf` nodes instead of raising.
    """
    if cq.head_variables:
        raise UnsafeQueryError(
            "safe_plan expects a Boolean CQ; ground the head variables first",
            subquery=cq,
        )
    return _plan_cq(cq, frozenset(), partial)


def _plan_cq(
    cq: ConjunctiveQuery, bound: FrozenSet[Variable], partial: bool
) -> SafePlan:
    cq = minimize_cq(cq, fixed=bound)
    atoms = _canonical_atoms(cq.atoms)
    cq = ConjunctiveQuery(atoms)
    _check_shatterable(cq)
    unbound = cq.existential_variables - bound
    components = _components(atoms, unbound)
    if len(components) > 1:
        _check_component_independence(components, cq)
    plans: List[SafePlan] = []
    for component in components:
        component_cq = (
            ConjunctiveQuery(component) if len(components) > 1 else cq
        )
        try:
            plans.append(_plan_component(component_cq, bound))
        except UnsafeQueryError:
            if partial and not bound:
                plans.append(UnsafeLeaf(component_cq))
            else:
                raise
    if len(plans) == 1:
        return plans[0]
    return IndependentJoin(plans)


def _plan_component(
    cq: ConjunctiveQuery, bound: FrozenSet[Variable]
) -> SafePlan:
    atoms = cq.atoms
    unbound = cq.existential_variables - bound
    if not unbound:
        _check_leaf_aliasing(atoms, cq)
        leaves: List[SafePlan] = [FactLeaf(atom) for atom in atoms]
        if len(leaves) == 1:
            return leaves[0]
        return IndependentJoin(leaves)
    separators = _cq_separators(atoms, unbound)
    if not separators:
        raise UnsafeQueryError(
            f"no separator variable in connected component {cq!r}; "
            "the component is unsafe",
            subquery=cq,
        )
    variable = separators[0]
    child = _plan_cq(cq, bound | {variable}, partial=False)
    return IndependentProject(variable, cq, child)


# ------------------------------------------------------------ UCQ planning
def safe_plan_ucq(
    ucq: UnionOfConjunctiveQueries, partial: bool = False
) -> SafePlan:
    """Compile a Boolean UCQ to a safe plan.

    Disjuncts over pairwise-incompatible relation slices combine by
    independent union; overlapping disjuncts go through the UCQ-level
    separator rule and, failing that, inclusion–exclusion with
    cancellation.  Unsafe queries raise :class:`UnsafeQueryError` with
    the minimal offending subquery attached — unless ``partial=True``,
    which wraps unsafe top-level pieces in :class:`UnsafeLeaf` nodes.

    >>> from repro.relational import RelationSymbol
    >>> R, T = RelationSymbol("R", 1), RelationSymbol("T", 1)
    >>> x, y = Variable("x"), Variable("y")
    >>> plan = safe_plan_ucq(UnionOfConjunctiveQueries([
    ...     ConjunctiveQuery([Atom(R, (x,))]),
    ...     ConjunctiveQuery([Atom(T, (y,))]),
    ... ]))
    >>> isinstance(plan, IndependentUnion)
    True
    """
    for cq in ucq.disjuncts:
        if cq.head_variables:
            raise UnsafeQueryError(
                "safe_plan_ucq expects a Boolean UCQ; ground the head "
                "variables first",
                subquery=ucq,
            )
    return _plan_ucq(ucq, frozenset(), partial)


def _plan_ucq(
    ucq: UnionOfConjunctiveQueries,
    bound: FrozenSet[Variable],
    partial: bool,
) -> SafePlan:
    ucq = minimize_ucq(ucq, fixed=bound)
    disjuncts = ucq.disjuncts
    if len(disjuncts) == 1:
        return _plan_cq(disjuncts[0], bound, partial)
    groups = _symbol_groups(disjuncts)
    if len(groups) > 1:
        children: List[SafePlan] = []
        for group in groups:
            sub = (
                UnionOfConjunctiveQueries(group) if len(group) > 1 else None
            )
            try:
                if sub is None:
                    children.append(_plan_cq(group[0], bound, partial))
                else:
                    children.append(_plan_ucq(sub, bound, partial))
            except UnsafeQueryError:
                if partial and not bound:
                    children.append(
                        UnsafeLeaf(sub if sub is not None else group[0]))
                else:
                    raise
        return IndependentUnion(children)
    separator = _ucq_separator(disjuncts, bound)
    if separator is not None:
        try:
            return _plan_ucq_project(disjuncts, separator, bound)
        except UnsafeQueryError:
            pass  # fall through to inclusion–exclusion
    try:
        return _inclusion_exclusion(disjuncts, bound)
    except UnsafeQueryError:
        if partial and not bound:
            return UnsafeLeaf(ucq)
        raise


def _symbol_groups(
    disjuncts: Sequence[ConjunctiveQuery],
) -> List[List[ConjunctiveQuery]]:
    """Group disjuncts whose relation slices can overlap (same relation
    with compatible shatter keys); distinct groups never share a fact
    and combine by independent union."""
    n = len(disjuncts)
    keys = [
        [shatter_key(atom) for atom in cq.atoms] for cq in disjuncts
    ]
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            if any(
                keys_compatible(left, right)
                for left in keys[i]
                for right in keys[j]
            ):
                parent[find(j)] = find(i)
    groups: Dict[int, List[ConjunctiveQuery]] = {}
    for i, cq in enumerate(disjuncts):
        groups.setdefault(find(i), []).append(cq)
    return list(groups.values())


def _ucq_separator(
    disjuncts: Sequence[ConjunctiveQuery], bound: FrozenSet[Variable]
) -> Optional[List[Variable]]:
    """A choice of one unbound variable per disjunct that acts as a
    separator for the whole union: each occurs in every atom of its
    disjunct, and for any two atoms of one relation with compatible
    keys (across disjuncts) the chosen variables share a position — so
    distinct values slice the union's facts disjointly."""
    per_disjunct: List[List[Tuple[Variable, List[tuple]]]] = []
    for cq in disjuncts:
        unbound = cq.existential_variables - bound
        candidates: List[Tuple[Variable, List[tuple]]] = []
        for variable in sorted(unbound, key=lambda v: v.name):
            occurrences: List[tuple] = []
            ok = True
            per_key: Dict[ShatterKey, Tuple[int, ...]] = {}
            for atom in cq.atoms:
                positions = _variable_positions(atom, variable)
                if not positions:
                    ok = False
                    break
                key = shatter_key(atom)
                previous = per_key.setdefault(key, positions)
                if previous != positions:
                    ok = False
                    break
                occurrences.append((key, frozenset(positions)))
            if ok:
                candidates.append((variable, occurrences))
        if not candidates:
            return None
        per_disjunct.append(candidates)

    choice: List[Optional[Variable]] = [None] * len(disjuncts)

    def consistent(occurrences: List[tuple], chosen: List[tuple]) -> bool:
        for key, positions in occurrences:
            for other_key, other_positions in chosen:
                if keys_compatible(key, other_key) and not (
                    positions & other_positions
                ):
                    return False
        return True

    def search(i: int, chosen: List[tuple]) -> bool:
        if i == len(disjuncts):
            return True
        for variable, occurrences in per_disjunct[i]:
            if consistent(occurrences, chosen) and consistent(
                occurrences, occurrences
            ):
                choice[i] = variable
                if search(i + 1, chosen + occurrences):
                    return True
        return False

    if not search(0, []):
        return None
    return [v for v in choice if v is not None]


def _plan_ucq_project(
    disjuncts: Sequence[ConjunctiveQuery],
    separator: List[Variable],
    bound: FrozenSet[Variable],
) -> SafePlan:
    """Independent project at union level: unify the chosen separator
    variable of every disjunct into one fresh variable and ground it."""
    used = {v.name for cq in disjuncts for v in cq.existential_variables}
    used.update(v.name for v in bound)
    name = f"_s{len(bound)}"
    while name in used:
        name += "_"
    fresh = Variable(name)
    renamed = [
        _rename_variable_in_cq(cq, variable, fresh)
        for cq, variable in zip(disjuncts, separator)
    ]
    scope = UnionOfConjunctiveQueries(renamed)
    child = _plan_ucq(scope, bound | {fresh}, partial=False)
    return IndependentProject(fresh, scope, child)


def _inclusion_exclusion(
    disjuncts: Sequence[ConjunctiveQuery], bound: FrozenSet[Variable]
) -> SafePlan:
    """``P(∨ᵢ Dᵢ) = Σ_{∅≠S} (−1)^{|S|+1} P(∧_{i∈S} Dᵢ)`` with terms
    minimized and grouped up to equivalence so coefficients cancel; each
    surviving term must itself admit a strict safe plan."""
    k = len(disjuncts)
    if k > MAX_INCLUSION_EXCLUSION:
        raise UnsafeQueryError(
            f"inclusion–exclusion over {k} overlapping disjuncts exceeds "
            f"the budget of {MAX_INCLUSION_EXCLUSION}",
            subquery=UnionOfConjunctiveQueries(disjuncts),
        )
    renamed = [
        rename_cq_apart(cq, f"@{i}", keep=bound)
        for i, cq in enumerate(disjuncts)
    ]
    terms: List[List[object]] = []  # [coefficient, term CQ]
    for size in range(1, k + 1):
        coefficient = 1 if size % 2 == 1 else -1
        for combo in itertools.combinations(range(k), size):
            atoms = [atom for i in combo for atom in renamed[i].atoms]
            term = minimize_cq(ConjunctiveQuery(atoms), fixed=bound)
            for entry in terms:
                if cq_equivalent(entry[1], term, fixed=bound):
                    entry[0] += coefficient
                    break
            else:
                terms.append([coefficient, term])
    signed: List[Tuple[int, SafePlan]] = []
    for coefficient, term in terms:
        if coefficient == 0:
            continue  # cancelled
        signed.append((coefficient, _plan_cq(term, bound, partial=False)))
    if len(signed) == 1 and signed[0][0] == 1:
        return signed[0][1]
    return InclusionExclusion(signed)


# ------------------------------------------------- grouped-execution info
# Side-table annotations for the set-at-a-time executor
# (``repro.finite.lifted``).  Safe plans are data-independent and cached
# per query family, so everything a grouped pass needs per node — probe
# layouts, separator positions, delta-cacheability — is derivable once
# from the plan alone and looked up by node identity at run time.  A
# side table (rather than extra slots on the AST) keeps the plan nodes
# and their pinned ``repr`` untouched.

class GroupedAtom:
    """How one scope atom of an :class:`IndependentProject` constrains
    the separator: which positions the separator occupies, which are
    pinned by constants, and which carry other (possibly enclosing-
    bound) variables."""

    __slots__ = ("atom", "relation", "separator_positions", "constants",
                 "variables")

    def __init__(self, atom: Atom, variable: Variable):
        self.atom = atom
        self.relation = atom.relation
        self.separator_positions = _variable_positions(atom, variable)
        self.constants: Tuple[Tuple[int, object], ...] = tuple(
            (i, t.value)
            for i, t in enumerate(atom.terms)
            if isinstance(t, Constant)
        )
        self.variables: Tuple[Tuple[int, Variable], ...] = tuple(
            (i, t)
            for i, t in enumerate(atom.terms)
            if isinstance(t, Variable) and t != variable
        )


class GroupedProject:
    """Annotation of one :class:`IndependentProject`: the scope atoms of
    each disjunct as :class:`GroupedAtom` layouts, plus whether the node
    may keep a delta-extended binding cache across truncations — sound
    exactly when the separator occurs in *every* scope atom (so a new
    fact can only perturb the candidate value it mentions) and the
    subtree is fully safe."""

    __slots__ = ("variable", "per_disjunct", "cacheable")

    def __init__(
        self,
        variable: Variable,
        per_disjunct: Tuple[Tuple[GroupedAtom, ...], ...],
        cacheable: bool,
    ):
        self.variable = variable
        self.per_disjunct = per_disjunct
        self.cacheable = cacheable


class GroupedLeaf:
    """Annotation of one :class:`FactLeaf`: the full-arity probe layout
    — per position either ``("c", value)`` or ``("v", variable)`` — so a
    grouped pass grounds every binding of the leaf in one signature-
    table sweep."""

    __slots__ = ("atom", "relation", "layout")

    def __init__(self, atom: Atom):
        self.atom = atom
        self.relation = atom.relation
        self.layout: Tuple[Tuple[str, object], ...] = tuple(
            ("c", t.value) if isinstance(t, Constant) else ("v", t)
            for t in atom.terms
        )


def grouped_plan_info(plan: SafePlan) -> Dict[int, object]:
    """The grouped-execution side table of one safe plan, keyed by node
    ``id``.  Valid for the lifetime of the plan object (the compile
    cache owns both and drops them together)."""
    info: Dict[int, object] = {}
    _annotate_plan(plan, info)
    return info


def _annotate_plan(plan: SafePlan, info: Dict[int, object]) -> bool:
    """Fill ``info`` for ``plan``'s subtree; True iff it is fully safe
    (contains no :class:`UnsafeLeaf`)."""
    if isinstance(plan, FactLeaf):
        info[id(plan)] = GroupedLeaf(plan.atom)
        return True
    if isinstance(plan, (IndependentJoin, IndependentUnion)):
        safe = True
        for child in plan.children:
            safe = _annotate_plan(child, info) and safe
        return safe
    if isinstance(plan, InclusionExclusion):
        safe = True
        for _, term in plan.terms:
            safe = _annotate_plan(term, info) and safe
        return safe
    if isinstance(plan, IndependentProject):
        safe = _annotate_plan(plan.child, info)
        subquery = plan.subquery
        disjuncts = (
            subquery.disjuncts
            if isinstance(subquery, UnionOfConjunctiveQueries)
            else (subquery,)
        )
        per_disjunct = tuple(
            tuple(GroupedAtom(atom, plan.variable) for atom in cq.atoms)
            for cq in disjuncts
        )
        cacheable = safe and all(
            grouped.separator_positions
            for atoms in per_disjunct
            for grouped in atoms
        )
        info[id(plan)] = GroupedProject(plan.variable, per_disjunct, cacheable)
        return safe
    # UnsafeLeaf (and anything unknown): no annotation, subtree unsafe.
    return False

"""First-order logic substrate: syntax, parsing, model checking, static
analysis, normal forms, queries/views, safe plans and lineage.

This implements FO[τ, U] of paper §2.1: relational vocabulary expanded by
constants from the universe, with active-domain semantics justified by
Fact 2.1 (an FO query with finite answer only produces tuples over
``adom(D) ∪ adom(φ)``).
"""

from repro.logic.syntax import (
    And,
    Atom,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Variable,
    Constant,
    FALSE,
    TRUE,
)
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate, satisfies, answer_tuples
from repro.logic.analysis import (
    adom_of_formula,
    free_variables,
    quantifier_rank,
    constants_of,
)
from repro.logic.queries import BooleanQuery, Query, FOView, View
from repro.logic.hierarchy import is_hierarchical, safe_plan, SafePlan
from repro.logic.lineage import Lineage, lineage_of
from repro.logic.compile_ra import compile_and_evaluate

__all__ = [
    "Formula",
    "Term",
    "Variable",
    "Constant",
    "Atom",
    "Equals",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "Forall",
    "TRUE",
    "FALSE",
    "parse_formula",
    "evaluate",
    "satisfies",
    "answer_tuples",
    "free_variables",
    "quantifier_rank",
    "adom_of_formula",
    "constants_of",
    "Query",
    "BooleanQuery",
    "View",
    "FOView",
    "is_hierarchical",
    "safe_plan",
    "SafePlan",
    "Lineage",
    "lineage_of",
    "compile_and_evaluate",
]

"""A recursive-descent parser for a textual FO syntax.

Grammar (precedence low to high)::

    formula   := quantified
    quantified:= ("EXISTS" | "FORALL") var ("," var)* "." quantified
               | implies
    implies   := or ("->" implies)?
    or        := and ("OR" and)*
    and       := unary ("AND" unary)*
    unary     := "NOT" unary | "TRUE" | "FALSE" | "(" formula ")" | atom
    atom      := NAME "(" term ("," term)* ")" | term "=" term
    term      := NAME | NUMBER | STRING

Keywords are case-insensitive; ``~``, ``&``, ``|`` are accepted as
aliases of NOT/AND/OR.  Lower-case bare identifiers are variables unless
they are bound by no quantifier *and* the caller asked for constants —
here we keep it simple and deterministic: a bare identifier is a variable
if it starts lower-case, a (string) constant if it starts upper-case or
is quoted.  Numbers are int/float constants.

>>> from repro.relational import Schema
>>> schema = Schema.of(R=1, S=2)
>>> str(parse_formula("EXISTS x. R(x) AND NOT S(x, 3)", schema))
'EXISTS x. ((R(x)) AND (NOT (S(x, 3))))'
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Union

from repro.errors import ParseError
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    FALSE,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TRUE,
    Term,
    Variable,
)
from repro.relational.schema import Schema


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_SPEC = [
    ("ARROW", r"->"),
    ("NUMBER", r"-?\d+(\.\d+)?"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("EQUALS", r"="),
    ("TILDE", r"~"),
    ("AMP", r"&"),
    ("PIPE", r"\|"),
    ("SKIP", r"\s+"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{k}>{p})" for k, p in _TOKEN_SPEC))

_KEYWORDS = {"EXISTS", "FORALL", "AND", "OR", "NOT", "TRUE", "FALSE"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "SKIP":
            if kind == "NAME" and value.upper() in _KEYWORDS:
                kind = value.upper()
            tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], schema: Schema):
        self.tokens = tokens
        self.index = 0
        self.schema = schema
        self.bound: List[str] = []

    # --------------------------------------------------------------- plumbing
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, got {token.kind} ({token.text!r})",
                token.position,
            )
        return self.advance()

    def at(self, *kinds: str) -> bool:
        return self.peek().kind in kinds

    # ---------------------------------------------------------------- grammar
    def formula(self) -> Formula:
        return self.quantified()

    def quantified(self) -> Formula:
        if self.at("EXISTS", "FORALL"):
            quantifier = self.advance().kind
            names = [self.expect("NAME").text]
            while self.at("COMMA"):
                self.advance()
                names.append(self.expect("NAME").text)
            self.expect("DOT")
            self.bound.extend(names)
            body = self.quantified()
            del self.bound[-len(names):]
            builder = Exists if quantifier == "EXISTS" else Forall
            for name in reversed(names):
                body = builder(Variable(name), body)
            return body
        return self.implies()

    def implies(self) -> Formula:
        left = self.disjunction()
        if self.at("ARROW"):
            self.advance()
            return Implies(left, self.implies())
        return left

    def disjunction(self) -> Formula:
        left = self.conjunction()
        while self.at("OR", "PIPE"):
            self.advance()
            left = Or(left, self.conjunction())
        return left

    def conjunction(self) -> Formula:
        left = self.unary()
        while self.at("AND", "AMP"):
            self.advance()
            left = And(left, self.unary())
        return left

    def unary(self) -> Formula:
        if self.at("NOT", "TILDE"):
            self.advance()
            return Not(self.unary())
        if self.at("TRUE"):
            self.advance()
            return TRUE
        if self.at("FALSE"):
            self.advance()
            return FALSE
        if self.at("EXISTS", "FORALL"):
            return self.quantified()
        if self.at("LPAREN"):
            self.advance()
            inner = self.formula()
            self.expect("RPAREN")
            return inner
        return self.atom_or_equality()

    def atom_or_equality(self) -> Formula:
        token = self.peek()
        if token.kind == "NAME" and self.tokens[self.index + 1].kind == "LPAREN":
            name = self.advance().text
            if name not in self.schema:
                raise ParseError(f"unknown relation {name!r}", token.position)
            symbol = self.schema[name]
            self.expect("LPAREN")
            terms: List[Term] = []
            if not self.at("RPAREN"):
                terms.append(self.term())
                while self.at("COMMA"):
                    self.advance()
                    terms.append(self.term())
            self.expect("RPAREN")
            return Atom(symbol, terms)
        # Otherwise it must be an equality between two terms.
        left = self.term()
        self.expect("EQUALS")
        right = self.term()
        return Equals(left, right)

    def term(self) -> Term:
        token = self.advance()
        if token.kind == "NUMBER":
            text = token.text
            return Constant(float(text) if "." in text else int(text))
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        if token.kind == "NAME":
            name = token.text
            if name in self.bound or name[0].islower() or name == "_":
                return Variable(name)
            return Constant(name)
        raise ParseError(
            f"expected a term, got {token.kind} ({token.text!r})", token.position
        )


def parse_formula(text: str, schema: Schema) -> Formula:
    """Parse ``text`` into a :class:`Formula` against ``schema``.

    >>> schema = Schema.of(R=2)
    >>> str(parse_formula("FORALL x. R(x, x) -> R(x, 'A')", schema))
    "FORALL x. ((R(x, x)) -> (R(x, 'A')))"
    """
    parser = _Parser(_tokenize(text), schema)
    formula = parser.formula()
    trailing = parser.peek()
    if trailing.kind != "EOF":
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}", trailing.position
        )
    return formula

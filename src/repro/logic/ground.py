"""Set-at-a-time grounding: hash-join lineage construction.

The brute-force grounder (:func:`repro.logic.lineage._lineage`) expands
every quantifier over the full active domain — O(|adom|^depth)
assignments, almost all of which ground some atom to an impossible fact
and collapse to ⊥.  This module evaluates the positive-existential
fragment *relationally* instead, the standard set-at-a-time technique of
extensional PDB engines (Suciu et al., *Probabilistic Databases*):

* an **atom** becomes a probe of the per-relation hash index
  (:class:`repro.relational.index.FactIndex`), yielding one row
  ``(assignment, Lineage.var(fact))`` per matching possible fact;
* a **conjunction** becomes a hash join on the shared variables — when
  one side is an atom, the join probes the atom's index per row of the
  other side (a semijoin-driven index join), so facts that match no
  partner are never touched;
* **disjunction** and **∃** aggregate per-group disjunctions over the
  matching rows only;
* everything else (negation, →, ∀, unbound free variables, an empty
  domain) falls back to the expansion grounder.

**Bit-identity.**  :class:`repro.logic.lineage.Lineage`'s constructors
canonicalize: ``conj``/``disj`` flatten same-tag children, drop
constants, dedupe, and sort children by ``repr`` — so the node a
connective builds depends only on the *set* of its non-constant
children, never on the order they were produced.  The engine yields, at
every connective, exactly the non-⊥ children the expansion would (rows
absent from a relation are precisely the assignments the expansion maps
to ⊥), hence the resulting ``Lineage`` is equal node-for-node.  The
differential suites in ``tests/logic/test_ground.py`` and
``tests/property/test_ground_props.py`` pin this.

Quantified-variable values are restricted to the quantifier domain
(matching the expansion's iteration) — with the default domain this is
free, because every indexed value is in the active domain; an explicit
smaller domain triggers a per-row membership filter.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Formula,
    Or,
    Variable,
    _Truth,
    walk,
)
from repro.relational.facts import Value, domain_sort_key
from repro.relational.index import FactIndex

# Imported late to avoid a cycle: lineage.py imports this module lazily.
from repro.logic.lineage import Lineage

#: AST nodes the set-at-a-time engine handles; anything else falls back
#: to the expansion grounder.
_FAST_NODES = (Atom, Equals, And, Or, Exists, _Truth)

_TRUE = Lineage.true()


def supports_set_at_a_time(formula: Formula) -> bool:
    """True iff every node of ``formula`` is in the positive-existential
    fragment the join engine grounds (atoms, =, ∧, ∨, ∃, ⊤/⊥).

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> supports_set_at_a_time(parse_formula("EXISTS x. R(x)", schema))
    True
    >>> supports_set_at_a_time(parse_formula("FORALL x. R(x)", schema))
    False
    """
    return all(isinstance(node, _FAST_NODES) for node in walk(formula))


class _Rows:
    """A grounded relation: an assignment table over a sorted variable
    tuple, mapping each value tuple to its (never-⊥) lineage."""

    __slots__ = ("vars", "rows")

    def __init__(
        self,
        variables: Tuple[Variable, ...],
        rows: Dict[Tuple[Value, ...], Lineage],
    ):
        self.vars = variables
        self.rows = rows

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.vars)
        return f"_Rows(({names}), {len(self.rows)} rows)"


def _sorted_vars(variables) -> Tuple[Variable, ...]:
    return tuple(sorted(variables, key=lambda v: v.name))


class GroundingEngine:
    """Set-at-a-time grounding of one formula family over one
    :class:`~repro.relational.index.FactIndex` and quantifier domain.

    The engine is stateless between calls apart from its probe/join
    counters (``probes``, ``joins``), which callers flush into the obs
    layer; one engine can serve many assignments (answer-tuple fan-outs)
    against the same index.

    >>> from repro.relational import Schema
    >>> from repro.relational.index import FactIndex
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1, S=2)
    >>> R, S = schema["R"], schema["S"]
    >>> index = FactIndex([R(1), S(1, 2)])
    >>> engine = GroundingEngine(index, frozenset({1, 2}))
    >>> formula = parse_formula("EXISTS x. EXISTS y. R(x) AND S(x, y)", schema)
    >>> engine.lineage(formula, {})
    Lineage((R(1) ∧ S(1, 2)))
    """

    def __init__(self, index: FactIndex, domain: FrozenSet[Value]):
        self.index = index
        self.domain = domain
        #: Quantified values must lie in ``domain``; skip the per-row
        #: check when every indexed value already does (always true for
        #: the default domain, which contains the active domain).
        self._filter = not index.values <= domain
        self.probes = 0
        self.joins = 0

    # -------------------------------------------------------------- entry
    def lineage(self, formula: Formula, assignment: Dict[Variable, Value]) -> Lineage:
        """The lineage of a sentence (all free variables pre-bound by
        ``assignment``) — bit-identical to the expansion grounder."""
        result = self._rows(formula, assignment)
        if result.vars:
            names = ", ".join(v.name for v in result.vars)
            raise EvaluationError(f"unbound variable {names} in lineage")
        return result.rows.get((), Lineage.false())

    def relation(self, formula: Formula) -> _Rows:
        """The grounded relation of a formula with free variables left
        open — the support of its non-⊥ groundings, used to derive
        candidate answer tuples in fan-outs."""
        return self._rows(formula, {})

    # ---------------------------------------------------------- dispatcher
    def _rows(self, formula: Formula, bound: Dict[Variable, Value]) -> _Rows:
        if isinstance(formula, Atom):
            return self._atom_rows(formula, bound)
        if isinstance(formula, And):
            return self._and_rows(formula, bound)
        if isinstance(formula, Or):
            return self._or_rows(formula, bound)
        if isinstance(formula, Exists):
            return self._exists_rows(formula, bound)
        if isinstance(formula, Equals):
            return self._equals_rows(formula, bound)
        if isinstance(formula, _Truth):
            if formula.value:
                return _Rows((), {(): _TRUE})
            return _Rows((), {})
        raise EvaluationError(
            f"set-at-a-time grounding does not handle {type(formula).__name__}"
        )

    # --------------------------------------------------------------- atoms
    def _atom_rows(self, atom: Atom, bound: Dict[Variable, Value]) -> _Rows:
        pattern: Dict[int, Value] = {}
        var_positions: List[Tuple[int, Variable]] = []
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                pattern[i] = term.value
            elif term in bound:
                pattern[i] = bound[term]
            else:
                var_positions.append((i, term))
        out_vars = _sorted_vars({v for _, v in var_positions})
        self.probes += 1
        facts = self.index.probe(atom.relation, pattern)
        rows: Dict[Tuple[Value, ...], Lineage] = {}
        for fact in facts:
            assignment = self._match(fact, var_positions)
            if assignment is None:
                continue
            rows[tuple(assignment[v] for v in out_vars)] = Lineage.var(fact)
        return _Rows(out_vars, rows)

    def _match(
        self, fact, var_positions: List[Tuple[int, Variable]]
    ) -> Optional[Dict[Variable, Value]]:
        """Bind the atom's open variable positions against one fact —
        None if a repeated variable disagrees or a value falls outside
        the quantifier domain."""
        assignment: Dict[Variable, Value] = {}
        domain = self.domain
        check = self._filter
        for i, var in var_positions:
            value = fact.args[i]
            if var in assignment and assignment[var] != value:
                return None
            if check and value not in domain:
                return None
            assignment[var] = value
        return assignment

    # ---------------------------------------------------------------- and
    def _and_rows(self, node: And, bound: Dict[Variable, Value]) -> _Rows:
        left, right = node.left, node.right
        # Semijoin pruning: when exactly one side is an atom, ground the
        # other side first and probe the atom's index per row — facts
        # with no join partner are never materialized.
        if isinstance(right, Atom) and not isinstance(left, Atom):
            return self._join_atom(self._rows(left, bound), right, bound)
        if isinstance(left, Atom) and not isinstance(right, Atom):
            return self._join_atom(self._rows(right, bound), left, bound)
        return self._join(self._rows(left, bound), self._rows(right, bound))

    def _join(self, a: _Rows, b: _Rows) -> _Rows:
        """Hash join on the shared variables."""
        self.joins += 1
        if not a.rows or not b.rows:
            return _Rows(_sorted_vars(set(a.vars) | set(b.vars)), {})
        # Build the hash table on the smaller side.
        if len(b.rows) < len(a.rows):
            a, b = b, a
        shared = [v for v in a.vars if v in set(b.vars)]
        out_vars = _sorted_vars(set(a.vars) | set(b.vars))
        a_shared = [a.vars.index(v) for v in shared]
        b_shared = [b.vars.index(v) for v in shared]
        table: Dict[Tuple[Value, ...], List[Tuple[Tuple[Value, ...], Lineage]]] = {}
        for key, lineage in a.rows.items():
            table.setdefault(tuple(key[i] for i in a_shared), []).append(
                (key, lineage))
        # Positions of every output variable in (a row, b row).
        a_pos = {v: i for i, v in enumerate(a.vars)}
        b_pos = {v: i for i, v in enumerate(b.vars)}
        layout = [
            (0, a_pos[v]) if v in a_pos else (1, b_pos[v]) for v in out_vars
        ]
        rows: Dict[Tuple[Value, ...], Lineage] = {}
        for b_key, b_lineage in b.rows.items():
            matches = table.get(tuple(b_key[i] for i in b_shared))
            if not matches:
                continue
            for a_key, a_lineage in matches:
                pair = (a_key, b_key)
                merged = tuple(pair[side][i] for side, i in layout)
                rows[merged] = Lineage.conj([a_lineage, b_lineage])
        return _Rows(out_vars, rows)

    def _join_atom(
        self, a: _Rows, atom: Atom, bound: Dict[Variable, Value]
    ) -> _Rows:
        """Index join: probe the atom per row of ``a``, binding the
        shared variables as constants (semijoin pruning)."""
        pattern_base: Dict[int, Value] = {}
        shared_positions: List[Tuple[int, Variable]] = []
        open_positions: List[Tuple[int, Variable]] = []
        a_vars = set(a.vars)
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                pattern_base[i] = term.value
            elif term in bound:
                pattern_base[i] = bound[term]
            elif term in a_vars:
                shared_positions.append((i, term))
            else:
                open_positions.append((i, term))
        if not shared_positions:
            # No join variables: a plain hash join degenerates to the
            # cross product either way.
            return self._join(a, self._atom_rows(atom, bound))
        self.joins += 1
        atom_vars = {v for _, v in shared_positions} | {
            v for _, v in open_positions}
        out_vars = _sorted_vars(a_vars | atom_vars)
        a_pos = {v: i for i, v in enumerate(a.vars)}
        rows: Dict[Tuple[Value, ...], Lineage] = {}
        for a_key, a_lineage in a.rows.items():
            pattern = dict(pattern_base)
            for i, var in shared_positions:
                pattern[i] = a_key[a_pos[var]]
            self.probes += 1
            for fact in self.index.probe(atom.relation, pattern):
                assignment = self._match(fact, open_positions)
                if assignment is None:
                    continue
                merged = tuple(
                    a_key[a_pos[v]] if v in a_pos else assignment[v]
                    for v in out_vars
                )
                rows[merged] = Lineage.conj(
                    [a_lineage, Lineage.var(fact)])
        return _Rows(out_vars, rows)

    # ----------------------------------------------------------------- or
    def _or_rows(self, node: Or, bound: Dict[Variable, Value]) -> _Rows:
        a = self._rows(node.left, bound)
        b = self._rows(node.right, bound)
        out_vars = _sorted_vars(set(a.vars) | set(b.vars))
        a = self._pad(a, out_vars)
        b = self._pad(b, out_vars)
        children: Dict[Tuple[Value, ...], List[Lineage]] = {}
        for key, lineage in a.rows.items():
            children.setdefault(key, []).append(lineage)
        for key, lineage in b.rows.items():
            children.setdefault(key, []).append(lineage)
        return _Rows(
            out_vars,
            {key: Lineage.disj(parts) for key, parts in children.items()},
        )

    def _pad(self, relation: _Rows, out_vars: Tuple[Variable, ...]) -> _Rows:
        """Extend rows over missing variables with every domain value —
        the relational reading of a subformula that does not mention a
        variable its sibling does (the expansion grounds it for every
        assignment of that variable alike)."""
        missing = [v for v in out_vars if v not in set(relation.vars)]
        if not missing:
            return relation
        domain = sorted(self.domain, key=domain_sort_key)
        pos = {v: i for i, v in enumerate(relation.vars)}
        miss_pos = {v: i for i, v in enumerate(missing)}
        rows: Dict[Tuple[Value, ...], Lineage] = {}
        combos = [()]
        for _ in missing:
            combos = [c + (value,) for c in combos for value in domain]
        for key, lineage in relation.rows.items():
            for combo in combos:
                merged = tuple(
                    key[pos[v]] if v in pos else combo[miss_pos[v]]
                    for v in out_vars
                )
                rows[merged] = lineage
        return _Rows(out_vars, rows)

    # ------------------------------------------------------------- exists
    def _exists_rows(self, node: Exists, bound: Dict[Variable, Value]) -> _Rows:
        variable = node.variable
        if variable in bound:
            # The quantifier shadows a pre-bound outer variable.
            bound = {k: v for k, v in bound.items() if k != variable}
        body = self._rows(node.body, bound)
        if variable not in set(body.vars):
            # x not free in the body: the expansion's |domain| identical
            # children dedupe to the body lineage itself.
            return body
        idx = body.vars.index(variable)
        out_vars = body.vars[:idx] + body.vars[idx + 1:]
        groups: Dict[Tuple[Value, ...], List[Lineage]] = {}
        for key, lineage in body.rows.items():
            groups.setdefault(key[:idx] + key[idx + 1:], []).append(lineage)
        return _Rows(
            out_vars,
            {key: Lineage.disj(parts) for key, parts in groups.items()},
        )

    # ------------------------------------------------------------- equals
    def _equals_rows(self, node: Equals, bound: Dict[Variable, Value]) -> _Rows:
        def resolve(term):
            if isinstance(term, Constant):
                return None, term.value
            if term in bound:
                return None, bound[term]
            return term, None

        left_var, left_value = resolve(node.left)
        right_var, right_value = resolve(node.right)
        if left_var is None and right_var is None:
            if left_value == right_value:
                return _Rows((), {(): _TRUE})
            return _Rows((), {})
        if left_var is None or right_var is None:
            var = left_var if left_var is not None else right_var
            value = right_value if left_var is not None else left_value
            # The expansion only reaches σ(var) = value with the value
            # drawn from the quantifier domain.
            if value in self.domain:
                return _Rows((var,), {(value,): _TRUE})
            return _Rows((var,), {})
        if left_var == right_var:
            # x = x: ⊤ for every domain value of x.
            return _Rows(
                (left_var,), {(value,): _TRUE for value in self.domain})
        out_vars = _sorted_vars((left_var, right_var))
        return _Rows(
            out_vars, {(value, value): _TRUE for value in self.domain})

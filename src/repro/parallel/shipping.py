"""Content-keyed PDB shipping and the pooled fan-out orchestrator.

The old fan-out pickled the *entire* table into every worker on every
call — twice, in fact: once as a pre-flight picklability probe and once
inside ``concurrent.futures``.  For the anytime workloads this module
exists for (ε-sweeps over growing truncations), consecutive calls ship
tables that differ only by an append-only suffix: TI tables grow by
:meth:`~repro.finite.tuple_independent.TupleIndependentTable.extend`
(dict insertion order *is* append order, and changing an existing
marginal is rejected) and BID tables by appending blocks.  So a warm
worker only ever needs the delta.

Parent side, :class:`TableShipper` keeps, per worker slot, what that
worker currently holds: ``(epoch, table key, item count)``.  Keys are
assigned per table *identity* (weakref-guarded, so a recycled ``id``
can never alias a dead table) — the same grown-in-place session table
keeps its key across sweep steps.  On the next fan-out each worker gets
either nothing (same count), the pickled suffix ``items[count:]``
(``fanout.ship_delta_bytes``), or — cold worker, respawned worker
(epoch moved), unknown or shrunk table — one full pickle
(``fanout.ship_full_bytes``).  Serialization happens exactly once per
distinct payload per call and *is* the picklability probe: a pickle
failure raises :class:`ShipError` (verdict cached per table identity +
count, so repeated calls don't re-pickle a known-bad table) and the
evaluation layer degrades to the serial path with the usual
``fanout.serial_fallback`` event.

Worker side, each process keeps the received tables plus one query
runtime per ``(table key, query)``: the parsed query, its candidate
values, the pruned answer support, and — for compiled strategies — a
:class:`~repro.finite.compile_cache.SharedGrounding` that *extends*
across sweep steps (same hash-consed node store, same scoring memo,
delta-updated fact index), plus a worker-local
:class:`~repro.finite.compile_cache.CompileCache` for the per-answer
safe-plan/BDD path.  Compiled diagrams therefore survive worker-side
exactly as they do in the parent's serial sessions.

Bit-identity: workers evaluate index ranges of the *same* canonical
answer enumeration the serial path uses (the deterministic support list,
or the ``candidates^arity`` product), with the same per-answer
evaluation; merging contiguous ranges in order reproduces the serial
result dict exactly, entry order included.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import weakref
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.errors import EvaluationError
from repro.finite.bid import BlockIndependentTable
from repro.finite.tuple_independent import TupleIndependentTable
from repro.parallel.pool import PoolUnavailableError, ShardPool
from repro.parallel.schedule import ChunkScheduler, StaticStrideScheduler

SHIP_FULL_BYTES = "fanout.ship_full_bytes"
SHIP_DELTA_BYTES = "fanout.ship_delta_bytes"


class ShipError(EvaluationError):
    """The payload cannot be shipped to the pool (most often: the table
    does not pickle).  The fan-out degrades to the serial path."""


def _table_count(table) -> int:
    """The append-only progress counter of a table: facts for TI tables,
    blocks for BID tables."""
    if isinstance(table, TupleIndependentTable):
        return len(table.marginals)
    if isinstance(table, BlockIndependentTable):
        return len(table.blocks)
    raise ShipError(
        f"shard shipping needs a TI or BID table, got {type(table).__name__}")


# =============================================================== worker side
#
# Everything below the fold runs inside pool worker processes.  Module
# globals are per-process, i.e. per-worker — that is the whole point.

#: key -> [table, version, arg values, facts in append order].  The arg
#: set and fact list are maintained incrementally by the delta ships, so
#: a refresh never rescans (or re-sorts) the whole table.
_TABLES: Dict[str, list] = {}
_RUNTIMES: Dict[Tuple[str, str], "_QueryRuntime"] = {}
_COMPILE_CACHE = None  # worker-local CompileCache, built lazily
_PERF = {"cpu_s": 0.0, "chunks": 0, "answers": 0}


def _worker_compile_cache():
    global _COMPILE_CACHE
    if _COMPILE_CACHE is None:
        from repro.finite.compile_cache import CompileCache

        _COMPILE_CACHE = CompileCache()
    return _COMPILE_CACHE


class _QueryRuntime:
    """One query family's warm state inside a worker: candidates,
    answer support, and the shared grounding, all refreshed lazily when
    the underlying table's version moves."""

    __slots__ = (
        "key", "query", "strategy", "domain", "version",
        "candidates", "answers", "grounding", "share", "seen",
    )

    def __init__(self, key: str, query, strategy: str, domain):
        self.key = key
        self.query = query
        self.strategy = strategy
        self.domain = domain  # explicit candidate values, or None
        self.version = -1
        self.candidates: Optional[List] = None
        self.answers: Optional[List] = None  # pruned support, or None
        self.grounding = None
        self.share: Optional[bool] = None
        self.seen = 0  # facts already in the grounding

    def refresh(self, entry: list) -> None:
        from repro.finite.evaluation import (
            _candidate_values,
            _grounding_is_safe,
        )
        from repro.logic.analysis import constants_of

        table, version, arg_values, fact_list = entry
        if version == self.version:
            return
        query = self.query
        candidates = _candidate_values(query, table, self.domain)
        if self.share is None:
            # Strategy, table kind, and grounded safety are all stable
            # across truncation growth — decide once per family.
            self.share = self.strategy == "bdd" or (
                self.strategy == "auto"
                and (
                    isinstance(table, BlockIndependentTable)
                    or not _grounding_is_safe(query, candidates)
                )
            )
        if self.share:
            # The grounding's base domain: query constants plus every
            # fact argument.  The arg set is maintained incrementally by
            # the delta ships (one copy here, not a rescan of the table).
            base = arg_values | set(constants_of(query.formula))
            if self.grounding is None:
                from repro.finite.compile_cache import SharedGrounding

                self.grounding = SharedGrounding(query.formula, table, base)
            else:
                self.grounding = self.grounding.extended_by(
                    table, base, fact_list[self.seen:])
            self.seen = len(fact_list)
            self.answers = self.grounding.answer_support(
                query.variables, candidates)
        else:
            self.answers = None
        self.candidates = candidates
        self.version = version

    def total(self) -> int:
        if self.answers is not None:
            return len(self.answers)
        return len(self.candidates) ** self.query.arity

    def eval_range(self, start: int, stop: Optional[int], step: int) -> Dict:
        from repro.finite.evaluation import query_probability
        from repro.logic.normalform import substitute
        from repro.logic.queries import BooleanQuery

        query = self.query
        if self.answers is not None:
            answers: Iterable = self.answers[slice(start, stop, step)]
        else:
            answers = itertools.islice(
                itertools.product(self.candidates, repeat=query.arity),
                start, stop, step,
            )
        results: Dict = {}
        for answer in answers:
            _PERF["answers"] += 1
            if self.grounding is not None:
                probability = self.grounding.answer_probability(
                    query.variables, answer)
            else:
                binding = dict(zip(query.variables, answer))
                grounded = substitute(query.formula, binding)
                boolean = BooleanQuery(
                    grounded, query.schema, name=f"{query.name}{answer}")
                probability = query_probability(
                    boolean, _TABLES[self.key][0], strategy=self.strategy,
                    compile_cache=_worker_compile_cache())
            if probability > 0:
                results[answer] = float(probability)
        return results


def _fact_args(facts) -> set:
    values: set = set()
    for fact in facts:
        values.update(fact.args)
    return values


def _worker_store_table(key: str, blob: bytes) -> int:
    """Full ship: (re)place the table under ``key``; any runtime built
    on a previous incarnation of the key is dropped."""
    table = pickle.loads(blob)
    facts = table.facts()
    _TABLES[key] = [table, 0, _fact_args(facts), list(facts)]
    for stale in [k for k in _RUNTIMES if k[0] == key]:
        del _RUNTIMES[stale]
    return _table_count(table)


def _worker_extend_table(key: str, kind: str, blob: bytes) -> int:
    """Delta ship: append the pickled suffix to the cached table and
    bump its version (runtimes refresh lazily on next use)."""
    entry = _TABLES.get(key)
    if entry is None:
        raise ShipError(f"delta for unknown table key {key!r}")
    delta = pickle.loads(blob)
    table = entry[0]
    if kind == "ti":
        table.extend(dict(delta))
        facts = [fact for fact, _ in delta]
    else:
        table.extend(delta)
        facts = [f for block in delta for f in block.alternatives]
    entry[1] += 1
    entry[2] |= _fact_args(facts)
    entry[3].extend(facts)
    return _table_count(table)


def _worker_store_query(key: str, qid: str, blob: bytes) -> bool:
    from repro.logic.queries import Query

    formula, schema, variables, name, strategy, domain = pickle.loads(blob)
    query = Query(formula, schema, variables=variables, name=name)
    _RUNTIMES[(key, qid)] = _QueryRuntime(key, query, strategy, domain)
    return True


def _worker_prepare(key: str, qid: str) -> Tuple[int, str]:
    """Bring one query runtime up to the current table version and
    report the answer-space size — the parent's chunking input.  The
    support/grounding computed here is reused by every later chunk."""
    runtime = _RUNTIMES[(key, qid)]
    runtime.refresh(_TABLES[key])
    mode = "support" if runtime.answers is not None else "product"
    return runtime.total(), mode


def _worker_eval_chunk(
    key: str, qid: str, start: int, stop: Optional[int], step: int
) -> Dict:
    began = time.process_time()
    runtime = _RUNTIMES[(key, qid)]
    runtime.refresh(_TABLES[key])
    results = runtime.eval_range(start, stop, step)
    _PERF["cpu_s"] += time.process_time() - began
    _PERF["chunks"] += 1
    return results


def _worker_perf(reset: bool = False) -> Dict:
    """This worker's cumulative evaluation CPU-time counters (the
    fan-out benchmark reads these to compute contention-free makespans
    on machines with fewer cores than workers)."""
    snapshot = dict(_PERF)
    if reset:
        _PERF.update(cpu_s=0.0, chunks=0, answers=0)
    return snapshot


# =============================================================== parent side
class TableShipper:
    """Parent-side bookkeeping of what each pool worker holds."""

    def __init__(self) -> None:
        #: id(table) -> (weakref, key): identity-stable keys.
        self._keys: Dict[int, Tuple[weakref.ref, str]] = {}
        self._next_key = itertools.count(1)
        #: slot -> (epoch, key, shipped item count).
        self._slots: Dict[int, Tuple[int, str, int]] = {}
        #: (slot, key, qid) -> epoch the query context was shipped at.
        self._queries: Dict[Tuple[int, str, str], int] = {}
        #: query fingerprint -> (qid, context blob).
        self._qids: Dict[tuple, Tuple[str, bytes]] = {}
        self._next_qid = itertools.count(1)
        #: key -> (count, reason): cached pickle-failure verdicts, so a
        #: known-bad table is probed once, not once per call.
        self._pickle_fail: Dict[str, Tuple[int, str]] = {}
        #: (key, from_count, count) -> blob: per-call serialization memo
        #: — one pickle per distinct payload no matter how many workers.
        self._blobs: Dict[Tuple[str, int, int], bytes] = {}
        #: Serializes whole fan-outs: slot bookkeeping must match what
        #: the (itself serialized) pool actually ran.
        self.lock = threading.RLock()

    # -------------------------------------------------------------- identity
    def table_key(self, table) -> Tuple[str, str, int]:
        """``(key, kind, count)`` for a table, keyed by live identity."""
        kind = "ti" if isinstance(table, TupleIndependentTable) else "bid"
        count = _table_count(table)  # validates the type, too
        record = self._keys.get(id(table))
        if record is not None and record[0]() is table:
            return record[1], kind, count
        key = f"t{next(self._next_key)}"
        self._keys[id(table)] = (weakref.ref(table), key)
        return key, kind, count

    def query_id(self, query, strategy: str, domain) -> Tuple[str, bytes]:
        """``(qid, context blob)`` for a query family; the blob is built
        (and probed) once per family."""
        fingerprint = (
            query.formula, query.variables, query.name, strategy,
            None if domain is None else tuple(domain),
        )
        cached = self._qids.get(fingerprint)
        if cached is not None:
            return cached
        context = (
            query.formula, query.schema, query.variables, query.name,
            strategy, None if domain is None else list(domain),
        )
        try:
            blob = pickle.dumps(context)
        except Exception as exc:
            raise ShipError(
                f"query context cannot be pickled: "
                f"{type(exc).__name__}: {exc}") from exc
        qid = f"q{next(self._next_qid)}"
        self._qids[fingerprint] = (qid, blob)
        return qid, blob

    def begin_call(self) -> None:
        """Reset the per-call serialization memo (blobs are only
        guaranteed coherent within one fan-out)."""
        self._blobs.clear()

    # -------------------------------------------------------------- shipping
    def ensure_worker(
        self, pool: ShardPool, slot: int, table,
        key: str, kind: str, count: int,
        qid: str, query_blob: bytes,
    ) -> None:
        """Bring one worker's cached state up to date: nothing, a delta,
        or a full table — plus the query context if this worker (epoch)
        hasn't seen this family yet."""
        epoch = pool.worker_epoch(slot)
        held = self._slots.get(slot)
        if (
            held is not None
            and held[0] == epoch and held[1] == key and held[2] <= count
        ):
            if held[2] < count:
                blob = self._serialize(table, key, kind, held[2], count)
                shipped = pool.run_on(
                    slot, _worker_extend_table, key, kind, blob)
                obs.incr(SHIP_DELTA_BYTES, len(blob))
                self._check_count(shipped, count, key, slot)
                self._slots[slot] = (epoch, key, count)
        else:
            blob = self._serialize(table, key, kind, 0, count)
            shipped = pool.run_on(slot, _worker_store_table, key, blob)
            obs.incr(SHIP_FULL_BYTES, len(blob))
            self._check_count(shipped, count, key, slot)
            self._slots[slot] = (epoch, key, count)
            # A full (re)ship dropped the worker's runtimes for the key.
            for stale in [
                q for q in self._queries if q[0] == slot and q[1] == key
            ]:
                del self._queries[stale]
        if self._queries.get((slot, key, qid)) != epoch:
            pool.run_on(slot, _worker_store_query, key, qid, query_blob)
            self._queries[(slot, key, qid)] = epoch

    def _check_count(self, shipped: int, count: int, key: str, slot: int):
        if shipped != count:
            # The worker's table disagrees with ours — drop the slot
            # record so the next attempt re-ships from scratch.
            self._slots.pop(slot, None)
            raise ShipError(
                f"worker {slot} holds {shipped} items of table {key!r}, "
                f"expected {count}")

    def _serialize(
        self, table, key: str, kind: str, from_count: int, count: int
    ) -> bytes:
        memo_key = (key, from_count, count)
        blob = self._blobs.get(memo_key)
        if blob is not None:
            return blob
        failed = self._pickle_fail.get(key)
        if failed is not None and failed[0] == count:
            raise ShipError(failed[1])
        try:
            if from_count == 0:
                blob = pickle.dumps(table)
            elif kind == "ti":
                delta = list(itertools.islice(
                    table.marginals.items(), from_count, None))
                blob = pickle.dumps(delta)
            else:
                blob = pickle.dumps(table.blocks[from_count:])
        except Exception as exc:
            reason = (
                f"table cannot be pickled for the shard pool: "
                f"{type(exc).__name__}: {exc}")
            self._pickle_fail[key] = (count, reason)
            raise ShipError(reason) from exc
        self._blobs[memo_key] = blob
        return blob


#: One shipper per pool, tied to the pool's lifetime.
_SHIPPERS: "weakref.WeakKeyDictionary[ShardPool, TableShipper]" = (
    weakref.WeakKeyDictionary())
_SHIPPERS_LOCK = threading.Lock()


def shipper_for(pool: ShardPool) -> TableShipper:
    with _SHIPPERS_LOCK:
        shipper = _SHIPPERS.get(pool)
        if shipper is None:
            shipper = TableShipper()
            _SHIPPERS[pool] = shipper
        return shipper


def pooled_answer_marginals(
    pool: ShardPool,
    query,
    pdb,
    candidates: List,
    strategy: str,
    domain=None,
    schedule: str = "dynamic",
) -> Dict:
    """Run one answer-marginal fan-out on a warm pool.

    The parent ships state (tables by delta, query contexts once per
    family), asks one worker for the answer-space size, then streams
    adaptively sized chunks through
    :meth:`~repro.parallel.pool.ShardPool.map_shards`; every worker
    evaluates ranges of the same canonical enumeration, and merging the
    contiguous ranges in order reproduces the serial result exactly.

    Raises :class:`ShipError` /
    :class:`~repro.parallel.pool.PoolUnavailableError` when the pool
    cannot run this payload (callers fall back serially); genuine
    evaluation errors re-raise with the worker traceback attached, and
    are *not* turned into fallbacks.
    """
    shipper = shipper_for(pool)
    with shipper.lock:
        key, kind, count = shipper.table_key(pdb)
        explicit = None if domain is None else list(candidates)
        qid, query_blob = shipper.query_id(query, strategy, explicit)
        shipper.begin_call()

        def prepare(pool_: ShardPool, slot: int) -> None:
            shipper.ensure_worker(
                pool_, slot, pdb, key, kind, count, qid, query_blob)

        # Size the answer space on worker 0 — this also serves as the
        # pre-flight picklability probe (the full pickle happens here on
        # cold pools) and warms worker 0's support and grounding.  A
        # worker that died since the last call surfaces here as a
        # PoolUnavailableError *after* being respawned, so one retry
        # against the fresh epoch is enough to stay on the pooled path.
        try:
            prepare(pool, 0)
            total, mode = pool.run_on(0, _worker_prepare, key, qid)
        except PoolUnavailableError:
            prepare(pool, 0)
            total, mode = pool.run_on(0, _worker_prepare, key, qid)
        if total == 0:
            obs.event(
                "fanout.pool", workers=pool.workers, shards=0, mode=mode)
            return {}
        if schedule == "static":
            scheduler = StaticStrideScheduler(total, pool.workers)
        elif schedule == "dynamic":
            scheduler = ChunkScheduler(total, pool.workers)
        else:
            raise EvaluationError(f"unknown fan-out schedule {schedule!r}")
        tasks = (
            (_worker_eval_chunk, (key, qid, start, stop, step))
            for (start, stop, step) in scheduler.chunks()
        )

        def observe(args: tuple, result, seconds: float) -> None:
            scheduler.observe(args[2:], seconds)

        chunks = pool.map_shards(tasks, prepare=prepare, observe=observe)
        obs.event(
            "fanout.pool", workers=pool.workers, shards=len(chunks),
            mode=mode, schedule=schedule,
        )
        results: Dict = {}
        if schedule == "static":
            # Strided shards interleave; restore enumeration order by
            # candidate position (== the canonical order in both modes).
            for chunk in chunks:
                results.update(chunk)
            position = {value: i for i, value in enumerate(candidates)}
            ordered = sorted(
                results, key=lambda t: tuple(position[v] for v in t))
            return {a: results[a] for a in ordered}
        for chunk in chunks:
            results.update(chunk)
        return results

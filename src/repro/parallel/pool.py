"""Persistent shard pool: long-lived worker processes for answer fan-out.

The relaxed open-world semantics (paper §3.1/§6) makes per-answer
marginals embarrassingly parallel, but a ``concurrent.futures``
process pool paid a full spawn plus a complete pickle of the PDB on
*every* call.  A :class:`ShardPool` is created once and stays warm for
its lifetime: workers are spawned eagerly at construction, survive
across calls, sessions, and ε-sweep steps, and hold worker-side state
(cached tables, extended compile diagrams — see
:mod:`repro.parallel.shipping`) that the parent refreshes with
O(delta)-sized messages instead of re-shipping whole tables.

The pool is a deliberately small primitive:

* :meth:`ShardPool.map_shards` pulls tasks *lazily* from an iterator
  and hands each to the next idle worker — the dynamic chunk
  scheduling of :mod:`repro.parallel.schedule` plugs in as a generator
  whose chunk sizes adapt while the call is in flight.
* Per-shard timeout: a worker that exceeds ``timeout`` seconds on one
  task is killed and respawned, and the call raises
  :class:`ShardError`.
* Crashed-worker detection: a worker that dies mid-shard (segfault,
  ``SIGKILL``, OOM) is respawned, its shard is rescheduled onto the
  next idle worker, and ``fanout.worker_restarts`` is incremented —
  the call still returns bit-identical results.
* Worker exceptions re-raise in the parent as the *original* exception
  type with the worker's traceback attached as a :class:`ShardError`
  cause (the contract of the old per-call fan-out, preserved).

Failures of the pool *infrastructure* (a task that cannot be pickled,
workers that cannot be spawned) raise :class:`PoolUnavailableError`;
the evaluation layer catches it and degrades to the serial path with a
``fanout.serial_fallback`` trace event, exactly as before.

Process-wide sharing: :func:`get_shared_pool` keeps one pool per
worker count, created on first use and reused by every later call —
``marginal_answer_probabilities(..., workers=k)``,
:meth:`RefinementSession.refine_marginals
<repro.core.refine.RefinementSession.refine_marginals>` sweeps, and
the serve layer's sessions all land on the same warm workers.  Reuse
is counted in ``fanout.pool_reuse``.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import pickle
import threading
import time
import traceback
from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import EvaluationError

#: Trace counters of the shard pool (active only inside ``obs.trace()``).
WORKER_RESTARTS = "fanout.worker_restarts"
CHUNKS_COUNTER = "fanout.chunks"
POOL_REUSE_COUNTER = "fanout.pool_reuse"

#: A shard that crashes its worker this many times is abandoned with a
#: :class:`ShardError` instead of being rescheduled forever.
MAX_SHARD_CRASHES = 3


class ShardError(EvaluationError):
    """A process-pool answer shard failed; the message carries the
    worker's original traceback.  Raised as the ``__cause__`` of the
    re-raised original exception, so both the exception type and the
    remote traceback survive the process boundary.  Raised directly for
    per-shard timeouts and shards that repeatedly crash their worker."""


class PoolUnavailableError(EvaluationError):
    """The pool infrastructure itself cannot run this call — the task
    payload does not pickle, or workers cannot be spawned.  Callers
    degrade to the serial path (``fanout.serial_fallback``)."""


# ---------------------------------------------------------------- worker side
def _worker_main(conn) -> None:
    """Worker-process loop: execute pickled ``("call", id, func, args)``
    frames until shutdown.  Module-level so both fork and spawn start
    methods can reach it."""
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            command = pickle.loads(data)
        except Exception as exc:  # corrupt frame: report, keep serving
            _worker_send(conn, ("error", -1, exc, traceback.format_exc()), -1)
            continue
        op = command[0]
        if op == "shutdown":
            return
        task_id = command[1]
        if op == "ping":
            _worker_send(conn, ("ok", task_id, "pong"), task_id)
            continue
        func, args = command[2], command[3]
        try:
            frame = ("ok", task_id, func(*args))
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            frame = ("error", task_id, exc, traceback.format_exc())
        _worker_send(conn, frame, task_id)


def _worker_send(conn, frame, task_id) -> None:
    """Send a result frame; unpicklable results degrade to an error
    frame instead of killing the worker."""
    try:
        data = pickle.dumps(frame)
    except Exception as exc:
        data = pickle.dumps((
            "error", task_id,
            ShardError(f"worker result could not be pickled: {exc}"),
            traceback.format_exc(),
        ))
    try:
        conn.send_bytes(data)
    except (BrokenPipeError, OSError):
        pass  # parent went away; the loop's recv will see EOF next


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("slot", "epoch", "process", "conn", "task")

    def __init__(self, slot: int, epoch: int, process, conn):
        self.slot = slot
        #: Bumped on every respawn — shipped worker-side state keyed by
        #: ``(slot, epoch)`` goes stale exactly when the epoch moves.
        self.epoch = epoch
        self.process = process
        self.conn = conn
        #: ``(task_id, shard_index, deadline)`` while busy, else None.
        self.task: Optional[Tuple[int, int, Optional[float]]] = None


class ShardPool:
    """A pool of warm worker processes for answer-shard evaluation.

    Workers are spawned eagerly at construction and stay alive until
    :meth:`close` — repeated fan-outs (ε-sweep steps, serve requests)
    reuse them, which is what makes worker-side caching
    (:mod:`repro.parallel.shipping`) possible at all.

    ``mp_context`` selects the multiprocessing start method (default:
    the platform default — fork on Linux, matching the old
    ``ProcessPoolExecutor`` fan-out); ``timeout`` is the default
    per-shard timeout in seconds (None = unbounded).

    Calls serialize on an internal lock: one fan-out runs at a time,
    concurrent callers (the serve layer multiplexes sessions onto one
    pool) take turns — same discipline as the session locks above it.
    """

    def __init__(
        self,
        workers: int,
        mp_context: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        workers = int(workers)
        if workers < 1:
            raise EvaluationError(f"pool needs >= 1 worker, got {workers}")
        self.timeout = timeout
        self._ctx = multiprocessing.get_context(mp_context)
        self._lock = threading.RLock()
        self._task_ids = itertools.count(1)
        self._closed = False
        self._workers: List[_Worker] = []
        #: Per-worker busy seconds of the last :meth:`map_shards` call
        #: (diagnostics; the fan-out benchmark reads it for makespans).
        self.last_call_stats: Dict = {}
        try:
            for slot in range(workers):
                self._workers.append(self._spawn(slot, 0))
        except Exception as exc:
            self.close()
            raise PoolUnavailableError(
                f"could not spawn shard workers: {exc}") from exc

    # ------------------------------------------------------------- lifecycle
    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_epoch(self, slot: int) -> int:
        """The respawn epoch of ``slot`` — shipped state recorded under
        an older epoch lives in a dead process."""
        return self._workers[slot].epoch

    def worker_pids(self) -> List[int]:
        return [w.process.pid for w in self._workers]

    def _spawn(self, slot: int, epoch: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"repro-shard-{slot}", daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(slot, epoch, process, parent_conn)

    def _respawn(self, worker: _Worker, counted: bool = True) -> None:
        """Replace a dead/stuck worker in its slot (epoch bumped)."""
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        fresh = self._spawn(worker.slot, worker.epoch + 1)
        worker.epoch = fresh.epoch
        worker.process = fresh.process
        worker.conn = fresh.conn
        worker.task = None
        if counted:
            obs.incr(WORKER_RESTARTS)
            obs.event("fanout.worker_restart", slot=worker.slot,
                      epoch=worker.epoch)

    def close(self) -> None:
        """Shut workers down; idempotent."""
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send_bytes(pickle.dumps(("shutdown",)))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------ execution
    def run_on(
        self,
        slot: int,
        func: Callable,
        *args,
        timeout: Optional[float] = None,
    ):
        """Run ``func(*args)`` on one specific idle worker and wait.

        The targeted primitive the shipping layer uses to refresh one
        worker's cached state; also handy in tests.  Worker exceptions
        re-raise with the remote traceback attached; a crash or timeout
        respawns the worker and raises.
        """
        with self._lock:
            self._check_open()
            worker = self._workers[slot]
            if worker.task is not None:
                raise EvaluationError(f"worker {slot} is busy")
            task_id = next(self._task_ids)
            data = self._encode_task(task_id, func, args)
            self._send_task(worker, data)
            deadline = timeout if timeout is not None else self.timeout
            if not worker.conn.poll(deadline):
                self._respawn(worker)
                raise ShardError(
                    f"targeted call on worker {slot} timed out "
                    f"after {deadline}s")
            try:
                frame = pickle.loads(worker.conn.recv_bytes())
            except (EOFError, OSError):
                self._respawn(worker)
                raise PoolUnavailableError(
                    f"worker {slot} died during a targeted call") from None
            status, _, *rest = frame
            if status == "ok":
                return rest[0]
            exc, remote_tb = rest
            raise exc from ShardError(
                "targeted worker call failed; original traceback:\n"
                + remote_tb)

    def map_shards(
        self,
        tasks: Iterable[Tuple[Callable, tuple]],
        prepare: Optional[Callable[["ShardPool", int], None]] = None,
        observe: Optional[Callable[[tuple, object, float], None]] = None,
        timeout: Optional[float] = None,
    ) -> List[object]:
        """Run ``(func, args)`` tasks on the pool, dynamically.

        ``tasks`` is pulled *lazily*: the next task is materialized only
        when a worker is free to take it, so a generator backed by an
        adaptive :class:`~repro.parallel.schedule.ChunkScheduler` sizes
        later chunks from the latency of earlier ones.  Results come
        back in task order (the order the iterator produced them).

        ``prepare(pool, slot)`` runs before the first task is dispatched
        to each worker within this call — and again after a respawn —
        which is where the shipping layer refreshes that worker's cached
        table and query state.  ``observe(args, result, seconds)`` fires
        on each completed task (the scheduler's feedback hook).

        Fault handling: a worker exception re-raises here (original
        type, remote traceback as the :class:`ShardError` cause); a
        crashed worker is respawned and its shard rescheduled (counted
        in ``fanout.worker_restarts``; :data:`MAX_SHARD_CRASHES` caps a
        shard that kills every worker it touches); a shard exceeding the
        timeout kills its worker and raises :class:`ShardError`.  On any
        raise, still-busy workers are respawned (uncounted) so the pool
        is clean for the next call.
        """
        with self._lock:
            self._check_open()
            timeout = timeout if timeout is not None else self.timeout
            source: Iterator = iter(tasks)
            stash: List[Tuple[Callable, tuple]] = []  # all pulled tasks
            pending: deque = deque()  # indices awaiting dispatch
            crashes: Dict[int, int] = {}
            started: Dict[int, float] = {}
            results: List[object] = []
            busy_s: Dict[int, float] = {}
            chunks = 0
            done = 0
            prepared: set = set()
            exhausted = False
            try:
                while True:
                    # Dispatch to every idle worker while work remains.
                    for worker in self._workers:
                        if worker.task is not None:
                            continue
                        if not pending and not exhausted:
                            nxt = next(source, None)
                            if nxt is None:
                                exhausted = True
                            else:
                                stash.append(nxt)
                                results.append(_UNSET)
                                pending.append(len(stash) - 1)
                        if not pending:
                            continue
                        if prepare is not None and worker.slot not in prepared:
                            prepare(self, worker.slot)
                            prepared.add(worker.slot)
                        index = pending.popleft()
                        func, args = stash[index]
                        task_id = next(self._task_ids)
                        data = self._encode_task(task_id, func, args)
                        try:
                            self._send_task(worker, data)
                        except PoolUnavailableError:
                            # Worker died before/while receiving: fresh
                            # worker, put the shard back, try again on
                            # the next loop iteration.
                            prepared.discard(worker.slot)
                            pending.appendleft(index)
                            continue
                        deadline = (
                            time.monotonic() + timeout
                            if timeout is not None else None
                        )
                        worker.task = (task_id, index, deadline)
                        started[index] = time.monotonic()
                        chunks += 1
                        obs.incr(CHUNKS_COUNTER)
                    if exhausted and done == len(stash):
                        break
                    self._pump_one(
                        stash, pending, crashes, started, results,
                        busy_s, prepared, observe, timeout,
                    )
                    done = sum(
                        1 for r in results if r is not _UNSET)
            except BaseException:
                self._abandon()
                raise
            self.last_call_stats = {
                "chunks": chunks,
                "worker_busy_s": dict(sorted(busy_s.items())),
            }
            return results

    # ------------------------------------------------------------- internals
    def _pump_one(
        self, stash, pending, crashes, started, results,
        busy_s, prepared, observe, timeout,
    ) -> None:
        """Wait for (at least) one in-flight shard to resolve."""
        busy = [w for w in self._workers if w.task is not None]
        if not busy:
            return
        now = time.monotonic()
        deadlines = [w.task[2] for w in busy if w.task[2] is not None]
        wait_s = None
        if deadlines:
            wait_s = max(0.0, min(deadlines) - now)
        ready = multiprocessing.connection.wait(
            [w.conn for w in busy], wait_s)
        if not ready:
            # Timed out: kill and respawn every expired worker, then
            # fail the call — a per-shard timeout is a hard error.
            now = time.monotonic()
            expired = [
                w for w in busy
                if w.task[2] is not None and now >= w.task[2]
            ]
            for worker in expired:
                self._respawn(worker)
            slots = [w.slot for w in expired]
            raise ShardError(
                f"shard timed out after {timeout}s on worker(s) "
                f"{slots}; workers respawned")
        by_conn = {w.conn: w for w in busy}
        for conn in ready:
            worker = by_conn[conn]
            task_id, index, _ = worker.task
            try:
                frame = pickle.loads(conn.recv_bytes())
            except (EOFError, OSError):
                # Crashed mid-shard: respawn, reschedule the shard.
                self._respawn(worker)
                prepared.discard(worker.slot)
                crashes[index] = crashes.get(index, 0) + 1
                if crashes[index] >= MAX_SHARD_CRASHES:
                    raise ShardError(
                        f"shard {index} crashed its worker "
                        f"{crashes[index]} times; giving up") from None
                pending.appendleft(index)
                continue
            status, frame_id, *rest = frame
            if frame_id != task_id:
                continue  # stale frame; the worker is still busy
            worker.task = None
            elapsed = time.monotonic() - started.pop(index)
            busy_s[worker.slot] = busy_s.get(worker.slot, 0.0) + elapsed
            if status == "ok":
                results[index] = rest[0]
                if observe is not None:
                    observe(stash[index][1], rest[0], elapsed)
            else:
                exc, remote_tb = rest
                raise exc from ShardError(
                    "answer-marginal shard failed in worker process; "
                    f"original traceback:\n{remote_tb}")

    def _send_task(self, worker: _Worker, data: bytes) -> None:
        try:
            worker.conn.send_bytes(data)
        except (BrokenPipeError, OSError):
            self._respawn(worker)
            raise PoolUnavailableError(
                f"worker {worker.slot} was dead at dispatch; respawned"
            ) from None

    def _encode_task(self, task_id: int, func, args) -> bytes:
        try:
            return pickle.dumps(("call", task_id, func, args))
        except Exception as exc:
            raise PoolUnavailableError(
                f"task payload cannot be pickled: "
                f"{type(exc).__name__}: {exc}") from exc

    def _abandon(self) -> None:
        """Error-path cleanup: respawn (uncounted) every busy worker so
        no stale in-flight shard can pollute the next call."""
        for worker in self._workers:
            if worker.task is not None:
                self._respawn(worker, counted=False)

    def _check_open(self) -> None:
        if self._closed:
            raise PoolUnavailableError("shard pool is closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "warm"
        return f"ShardPool(workers={self.workers}, {state})"


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset shard result>"


_UNSET = _Unset()


# -------------------------------------------------------- process-wide pools
_SHARED_POOLS: Dict[int, ShardPool] = {}
_SHARED_LOCK = threading.Lock()


def get_shared_pool(workers: int, timeout: Optional[float] = None) -> ShardPool:
    """The process-wide shard pool for ``workers`` — created once,
    shared by every later caller asking for the same size (counted in
    ``fanout.pool_reuse``), shut down at interpreter exit."""
    workers = int(workers)
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get(workers)
        if pool is not None and not pool.closed:
            obs.incr(POOL_REUSE_COUNTER)
            return pool
        pool = ShardPool(workers, timeout=timeout)
        _SHARED_POOLS[workers] = pool
        return pool


def shutdown_shared_pools() -> None:
    """Close every process-wide pool (atexit hook; also used by tests)."""
    with _SHARED_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.close()


atexit.register(shutdown_shared_pools)

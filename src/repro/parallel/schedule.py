"""Chunk scheduling for the answer fan-out.

The old fan-out split the answer space into exactly one strided shard
per worker (``offset``/``stride``), fixed up front.  Skewed per-answer
costs — one hot answer group whose grounded lineage dwarfs the rest —
then serialize the whole call behind the unlucky worker while the others
idle.  :class:`ChunkScheduler` replaces that with *dynamic* chunking:
the answer space is cut into many small contiguous index ranges, workers
pull the next range the moment they go idle (the pull happens inside
:meth:`ShardPool.map_shards <repro.parallel.pool.ShardPool.map_shards>`,
which materializes tasks lazily), and the chunk size adapts to the
latency actually observed so cheap regions coarsen (less dispatch
overhead) while expensive regions stay fine-grained (better balance).

:class:`StaticStrideScheduler` reproduces the legacy one-shard-per-worker
split through the same interface — it exists so the fan-out benchmark
can compare both policies on identical machinery.

Chunks are ``(start, stop, step)`` index ranges into the canonical
answer enumeration (the pruned support list, or the streamed
``candidates^arity`` product); contiguous ``step == 1`` ranges merged in
order reproduce the serial enumeration order exactly, which is what
keeps pooled results bit-identical to the serial path.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

#: Seconds of worker time one chunk should cost once the rate is known —
#: small enough to balance a skewed tail, large enough that dispatch
#: overhead (one pickle round-trip per chunk) stays negligible.
TARGET_CHUNK_SECONDS = 0.2

#: Exponential-moving-average weight of the newest per-chunk rate.
RATE_EMA_ALPHA = 0.4

Chunk = Tuple[int, Optional[int], int]


class ChunkScheduler:
    """Adaptive contiguous chunking of ``total`` answer indices.

    Until a rate is observed, chunks are ``total / (workers * oversubscribe)``
    — enough pieces that every worker gets several even if the estimate
    never improves.  After each completed chunk :meth:`observe` updates
    an EMA of answers/second, and later chunks are sized to
    :data:`TARGET_CHUNK_SECONDS` of estimated work, capped so the tail
    still splits across all workers.
    """

    def __init__(
        self,
        total: int,
        workers: int,
        target_seconds: float = TARGET_CHUNK_SECONDS,
        oversubscribe: int = 4,
        min_chunk: int = 1,
    ):
        self.total = int(total)
        self.workers = max(1, int(workers))
        self.target_seconds = float(target_seconds)
        self.min_chunk = max(1, int(min_chunk))
        self.initial = max(
            self.min_chunk, self.total // (self.workers * oversubscribe))
        self._rate: Optional[float] = None  # answers / second (EMA)
        self.issued = 0  # chunks handed out so far (diagnostics)

    def chunks(self) -> Iterator[Chunk]:
        """Contiguous ``(start, stop, 1)`` ranges covering ``[0, total)``
        in order.  Lazy: each ``next()`` reads the freshest rate, so a
        range requested *after* some chunks completed is sized by their
        observed latency."""
        start = 0
        while start < self.total:
            stop = min(self.total, start + self._next_size(self.total - start))
            yield (start, stop, 1)
            self.issued += 1
            start = stop

    def observe(self, chunk: Chunk, seconds: float) -> None:
        """Feed back one completed chunk's latency."""
        start, stop, step = chunk
        if stop is None or step != 1:
            return
        count = max(0, stop - start)
        if count == 0 or seconds <= 0:
            return
        rate = count / seconds
        if self._rate is None:
            self._rate = rate
        else:
            self._rate += RATE_EMA_ALPHA * (rate - self._rate)

    def _next_size(self, remaining: int) -> int:
        if self._rate is None:
            size = self.initial
        else:
            size = int(self._rate * self.target_seconds)
        # Never let one chunk swallow a tail the idle workers could
        # share: cap at an even split of what's left.
        fair_share = -(-remaining // self.workers)  # ceil
        return max(self.min_chunk, min(size, fair_share, remaining))

    def __repr__(self) -> str:
        return (
            f"ChunkScheduler(total={self.total}, workers={self.workers}, "
            f"rate={self._rate!r})"
        )


class StaticStrideScheduler:
    """The legacy split: one strided shard per worker, fixed up front.

    Kept as the benchmark baseline (``schedule="static"``); results
    shipped back from strided shards are re-sorted into enumeration
    order by the caller (``step != 1`` ranges interleave)."""

    def __init__(self, total: int, workers: int):
        self.total = int(total)
        self.workers = max(1, int(workers))
        self.issued = 0

    def chunks(self) -> Iterator[Chunk]:
        shards = min(self.workers, self.total) or 0
        for offset in range(shards):
            yield (offset, None, shards)
            self.issued += 1

    def observe(self, chunk: Chunk, seconds: float) -> None:
        pass

    def __repr__(self) -> str:
        return (
            f"StaticStrideScheduler(total={self.total}, "
            f"workers={self.workers})"
        )

"""Persistent shard pool for answer-marginal fan-out.

Long-lived worker processes (:mod:`repro.parallel.pool`) created once
and kept warm across calls, refinement-session sweep steps, and serve
sessions; O(delta) table shipping plus worker-side compiled-diagram
state (:mod:`repro.parallel.shipping`); dynamic, latency-adaptive chunk
scheduling of the answer space (:mod:`repro.parallel.schedule`).

Entry points most callers want:

* ``marginal_answer_probabilities(..., workers=k)`` — the evaluation
  layer routes through :func:`get_shared_pool` automatically;
* :func:`get_shared_pool` / :class:`ShardPool` — explicit pool handles
  for sessions and the serve layer;
* :func:`pooled_answer_marginals` — the orchestrator, for callers that
  manage their own pool.
"""

from repro.parallel.pool import (
    MAX_SHARD_CRASHES,
    PoolUnavailableError,
    ShardError,
    ShardPool,
    get_shared_pool,
    shutdown_shared_pools,
)
from repro.parallel.schedule import ChunkScheduler, StaticStrideScheduler
from repro.parallel.shipping import (
    ShipError,
    TableShipper,
    pooled_answer_marginals,
    shipper_for,
)

__all__ = [
    "MAX_SHARD_CRASHES",
    "ChunkScheduler",
    "PoolUnavailableError",
    "ShardError",
    "ShardPool",
    "ShipError",
    "StaticStrideScheduler",
    "TableShipper",
    "get_shared_pool",
    "pooled_answer_marginals",
    "shipper_for",
    "shutdown_shared_pools",
]

"""Views on finite PDBs: pushforward semantics (paper §3.1, eq. (3)).

``V(D)`` is the PDB with ``P′({D′}) = P(V⁻¹({D′}))`` — every world is
mapped through the view and probabilities of colliding images add up.
This is also the mechanism behind the classical result that every finite
PDB is FO-definable over a tuple-independent one (paper §4.3), which
Proposition 4.9 shows fails in the infinite.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.finite.bid import BlockIndependentTable
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.queries import Query, View
from repro.relational.instance import Instance

PDBLike = Union[FinitePDB, TupleIndependentTable, BlockIndependentTable]


def apply_view(view: View, pdb: PDBLike) -> FinitePDB:
    """The image PDB ``V(D)`` (eq. (3)): pushforward of the world
    distribution under the view mapping.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> from repro.logic.queries import FOView
    >>> source, target = Schema.of(R=2), Schema.of(T=1)
    >>> R = source["R"]
    >>> view = FOView(source, target,
    ...               {"T": parse_formula("EXISTS y. R(x, y)", source)})
    >>> pdb = TupleIndependentTable(source, {R(1, 2): 0.5})
    >>> image = apply_view(view, pdb)
    >>> round(image.fact_marginal(target["T"](1)), 10)
    0.5
    """
    finite = pdb if isinstance(pdb, FinitePDB) else pdb.expand()
    images: Dict[Instance, float] = {}
    for instance in finite.instances():
        image = view(instance)
        images[image] = images.get(image, 0.0) + finite.probability_of(instance)
    return FinitePDB(view.target, images)


def apply_query(query: Query, pdb: PDBLike) -> FinitePDB:
    """``Q(D)`` as a PDB over the single answer relation."""
    return apply_view(query.as_view(), pdb)

"""Classical finite probabilistic databases — the substrate the paper
generalizes, and the "traditional closed-world query evaluation
algorithm" that Proposition 6.1 delegates to.

Contents: explicit possible-world PDBs, finite tuple-independent tables,
finite block-independent-disjoint tables, and four interchangeable query
evaluation strategies (possible-world enumeration, lineage + Shannon
expansion, lifted safe plans, Monte Carlo).
"""

from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.finite.bid import BlockIndependentTable, Block
from repro.finite.evaluation import (
    query_probability,
    query_probability_by_worlds,
    marginal_answer_probabilities,
)
from repro.finite.lineage_eval import lineage_probability, query_probability_by_lineage
from repro.finite.lifted import evaluate_plan, query_probability_lifted
from repro.finite.montecarlo import (
    MonteCarloEstimate,
    event_probability_monte_carlo,
    query_probability_monte_carlo,
    z_quantile,
)
from repro.finite.karp_luby import (
    DNFTerm,
    KarpLubyEstimate,
    karp_luby_probability,
    query_probability_karp_luby,
)
from repro.finite.representation import (
    represent_over_tuple_independent,
    verify_representation,
)
from repro.finite.bdd import BDDManager, compile_lineage, query_probability_by_bdd
from repro.finite.compile_cache import (
    DEFAULT_COMPILE_CACHE,
    CompileCache,
    CompiledQuery,
    SharedGrounding,
    bid_bdd_probability,
    query_probability_by_bdd_cached,
)
from repro.finite.topk import (
    iter_worlds_by_probability,
    most_probable_world,
    top_k_worlds,
)
from repro.finite.views import apply_view, apply_query

__all__ = [
    "FinitePDB",
    "TupleIndependentTable",
    "BlockIndependentTable",
    "Block",
    "query_probability",
    "query_probability_by_worlds",
    "marginal_answer_probabilities",
    "lineage_probability",
    "query_probability_by_lineage",
    "evaluate_plan",
    "query_probability_lifted",
    "query_probability_monte_carlo",
    "event_probability_monte_carlo",
    "MonteCarloEstimate",
    "z_quantile",
    "DNFTerm",
    "KarpLubyEstimate",
    "karp_luby_probability",
    "query_probability_karp_luby",
    "represent_over_tuple_independent",
    "verify_representation",
    "BDDManager",
    "compile_lineage",
    "query_probability_by_bdd",
    "DEFAULT_COMPILE_CACHE",
    "CompileCache",
    "CompiledQuery",
    "SharedGrounding",
    "bid_bdd_probability",
    "query_probability_by_bdd_cached",
    "top_k_worlds",
    "most_probable_world",
    "iter_worlds_by_probability",
    "apply_view",
    "apply_query",
]

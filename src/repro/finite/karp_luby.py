"""The Karp–Luby unbiased estimator for DNF/UCQ probability.

Naive Monte Carlo needs ``Ω(1/P(Q))`` samples to see a single positive
world when ``P(Q)`` is small.  The Karp–Luby scheme samples from the
*union space* — pick a DNF term with probability proportional to its
(exactly computable) probability, sample a world conditioned on that
term being true, and count whether the chosen term is the *first*
satisfied one.  The estimate ``(Σ P(term_i)) · (hits / samples)`` is
unbiased with relative error independent of ``P(Q)`` — an FPRAS for DNF.

Here terms come from a Boolean query's lineage in DNF, or directly from
the CQs of a UCQ grounded against a TI table.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import EvaluationError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.lineage import Lineage, lineage_of
from repro.logic.queries import BooleanQuery
from repro.relational.facts import Fact
from repro.sampling import DEFAULT_BATCH_SIZE, batch_rngs, get_kernel


class DNFTerm(NamedTuple):
    """One conjunctive term: facts that must be present / absent."""

    positive: frozenset
    negative: frozenset

    def probability(self, marginal: Callable[[Fact], float]) -> float:
        """Exact ``P(term)`` under tuple independence."""
        probability = 1.0
        for fact in self.positive:
            probability *= marginal(fact)
        for fact in self.negative:
            probability *= 1.0 - marginal(fact)
        return probability

    def satisfied_by(self, world: Set[Fact]) -> bool:
        return self.positive <= world and not (self.negative & world)


#: Default cap on the DNF expansion: a non-DNF-shaped lineage (e.g. a
#: CNF) multiplies terms per conjunct, and the unguarded expansion can
#: hang the process before allocating anything observable.
DEFAULT_MAX_DNF_TERMS = 50_000


def lineage_to_dnf(
    expr: Lineage, max_terms: int = DEFAULT_MAX_DNF_TERMS
) -> List[DNFTerm]:
    """Expand a lineage into DNF terms (exponential in the worst case;
    intended for union-of-conjunctions shapes where it is linear).

    The expansion is abandoned with :class:`EvaluationError` as soon as
    an intermediate term list exceeds ``max_terms`` — the guard fires
    mid-product, so a CNF-shaped lineage fails fast instead of hanging.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> expr = Lineage.disj([Lineage.var(R(1)),
    ...                      Lineage.conj([Lineage.var(R(2)),
    ...                                    Lineage.negation(Lineage.var(R(3)))])])
    >>> sorted(len(t.positive) for t in lineage_to_dnf(expr))
    [1, 1]
    """
    if max_terms <= 0:
        raise EvaluationError(f"max_terms must be positive, got {max_terms}")
    return _lineage_to_dnf(expr, max_terms)


def _check_term_budget(count: int, max_terms: int) -> None:
    if count > max_terms:
        raise EvaluationError(
            f"DNF expansion exceeded max_terms={max_terms} "
            f"({count} partial terms); the lineage is not DNF-shaped — "
            "use an exact strategy or raise max_terms explicitly"
        )


def _lineage_to_dnf(expr: Lineage, max_terms: int) -> List[DNFTerm]:
    node = expr.node
    tag = node[0]
    if tag == "true":
        return [DNFTerm(frozenset(), frozenset())]
    if tag == "false":
        return []
    if tag == "var":
        return [DNFTerm(frozenset({node[1]}), frozenset())]
    if tag == "not":
        inner = Lineage(node[1])
        if inner.node[0] == "var":
            return [DNFTerm(frozenset(), frozenset({inner.node[1]}))]
        # Push negation inward and retry (De Morgan via the constructors).
        pushed = _push_negation(inner)
        return _lineage_to_dnf(pushed, max_terms)
    if tag == "or":
        terms: List[DNFTerm] = []
        for child in node[1]:
            terms.extend(_lineage_to_dnf(Lineage(child), max_terms))
            _check_term_budget(len(terms), max_terms)
        return terms
    if tag == "and":
        result = [DNFTerm(frozenset(), frozenset())]
        for child in node[1]:
            child_terms = _lineage_to_dnf(Lineage(child), max_terms)
            _check_term_budget(len(result) * len(child_terms), max_terms)
            result = [
                DNFTerm(a.positive | b.positive, a.negative | b.negative)
                for a in result
                for b in child_terms
                if not ((a.positive | b.positive) & (a.negative | b.negative))
            ]
            if not result:
                return []
        return result
    raise EvaluationError(f"unknown lineage node {node!r}")


def _push_negation(expr: Lineage) -> Lineage:
    """One-level De Morgan push for negated conjunctions/disjunctions."""
    node = expr.node
    tag = node[0]
    if tag == "and":
        return Lineage.disj(
            [Lineage.negation(Lineage(child)) for child in node[1]])
    if tag == "or":
        return Lineage.conj(
            [Lineage.negation(Lineage(child)) for child in node[1]])
    if tag == "not":
        return Lineage(node[1])
    if tag == "true":
        return Lineage.false()
    if tag == "false":
        return Lineage.true()
    return Lineage.negation(expr)


class KarpLubyEstimate(NamedTuple):
    estimate: float
    samples: int
    #: Σ P(term_i): the union-bound normalizer.
    term_mass: float


def karp_luby_probability(
    terms: Sequence[DNFTerm],
    table: TupleIndependentTable,
    samples: int,
    rng: Optional[random.Random] = None,
    backend: str = "auto",
    seed: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> KarpLubyEstimate:
    """Unbiased DNF probability estimate via the Karp–Luby scheme.

    ``backend="scalar"`` runs the original fact-by-fact conditional
    sampler; the batched backends draw term choices and base worlds
    ``batch_size`` at a time from a :mod:`repro.sampling` kernel and
    apply the term's forced facts afterwards (equivalent in
    distribution, since facts are independent).

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> terms = [DNFTerm(frozenset({R(1)}), frozenset()),
    ...          DNFTerm(frozenset({R(2)}), frozenset())]
    >>> est = karp_luby_probability(terms, table, 4000, random.Random(0))
    >>> abs(est.estimate - 0.75) < 0.05
    True
    """
    if samples <= 0:
        raise EvaluationError("samples must be positive")
    with obs.trace() as t:
        obs.note(strategy=f"karp-luby[{backend}]")
        if not terms:
            return obs.attach_report(
                KarpLubyEstimate(0.0, samples, 0.0),
                obs.EvalReport.from_trace(t))
        weights = [term.probability(table.marginal) for term in terms]
        term_mass = sum(weights)
        if term_mass == 0.0:
            return obs.attach_report(
                KarpLubyEstimate(0.0, samples, 0.0),
                obs.EvalReport.from_trace(t))
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w
            cumulative.append(acc)
        all_facts = table.facts()
        with obs.phase("sample"):
            if backend == "scalar":
                if rng is None:
                    if seed is None:
                        raise EvaluationError("provide rng= or seed=")
                    rng = random.Random(seed)
                hits = _scalar_hits(terms, table, samples, rng, cumulative,
                                    term_mass, all_facts)
            else:
                hits = _batched_hits(terms, table, samples, rng, seed,
                                     backend, batch_size, cumulative,
                                     term_mass, all_facts)
        obs.incr("sampling.samples", samples)
        # The estimator is term_mass · (hits/samples): its standard error
        # is term_mass · sqrt(p̂(1−p̂)/samples) for p̂ = hits/samples.
        hit_rate = hits / samples
        std_error = term_mass * math.sqrt(
            max(hit_rate * (1.0 - hit_rate), 1.0 / samples) / samples)
        obs.gauge_max("sampling.std_error", std_error)
        obs.gauge_max("sampling.half_width", 1.96 * std_error)
        estimate = KarpLubyEstimate(term_mass * hit_rate, samples, term_mass)
    return obs.attach_report(estimate, obs.EvalReport.from_trace(t))


def _scalar_hits(terms, table, samples, rng, cumulative, term_mass,
                 all_facts) -> int:
    """The original one-draw-at-a-time reference implementation."""
    hits = 0
    for _ in range(samples):
        # 1. Pick a term ∝ its probability.
        u = rng.random() * term_mass
        index = _bisect(cumulative, u)
        term = terms[index]
        # 2. Sample a world conditioned on the term being satisfied.
        world: Set[Fact] = set(term.positive)
        for fact in all_facts:
            if fact in term.positive or fact in term.negative:
                continue
            if rng.random() < table.marginal(fact):
                world.add(fact)
        # 3. Count iff the chosen term is the *first* satisfied term.
        first = next(
            i for i, t in enumerate(terms) if t.satisfied_by(world)
        )
        if first == index:
            hits += 1
    return hits


def _batched_hits(terms, table, samples, rng, seed, backend, batch_size,
                  cumulative, term_mass, all_facts) -> int:
    kernel = get_kernel(backend)
    rng_for = batch_rngs(kernel, rng=rng, seed=seed)
    probs = [float(p) for p in table.marginal_values(all_facts)]
    last_term = len(terms) - 1
    hits = 0
    done = 0
    batch_index = 0
    while done < samples:
        k = min(batch_size, samples - done)
        backend_rng = rng_for(batch_index)
        # 1. Batch of term picks ∝ term probability (clamped against the
        # measure-zero float edge u == term_mass).
        indices = kernel.categorical(cumulative, k, backend_rng,
                                     scale=term_mass)
        # 2. Batch of unconditioned worlds; conditioning on the chosen
        # term just overrides its positive/negative facts.
        rows = kernel.bernoulli_rows(probs, k, backend_rng)
        for index, row in zip(indices, rows):
            index = min(index, last_term)
            term = terms[index]
            world = {all_facts[i] for i in row}
            world -= term.negative
            world |= term.positive
            # 3. Count iff the chosen term is the *first* satisfied one.
            first = next(
                i for i, t in enumerate(terms) if t.satisfied_by(world)
            )
            if first == index:
                hits += 1
        done += k
        batch_index += 1
    obs.incr("sampling.batches", batch_index)
    return hits


def _bisect(cumulative: List[float], value: float) -> int:
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] <= value:
            low = mid + 1
        else:
            high = mid
    return low


def query_probability_karp_luby(
    query: BooleanQuery,
    table: TupleIndependentTable,
    samples: int,
    rng: Optional[random.Random] = None,
    backend: str = "auto",
    seed: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_terms: int = DEFAULT_MAX_DNF_TERMS,
) -> KarpLubyEstimate:
    """Karp–Luby estimate for a Boolean query via its lineage DNF.

    The lineage itself is grounded set-at-a-time for
    positive-existential queries (see
    :func:`repro.logic.lineage.lineage_of`); only the DNF expansion
    below is bounded.

    ``max_terms`` bounds the DNF expansion of the lineage
    (:func:`lineage_to_dnf`); queries whose lineage is not
    union-of-conjunctions shaped fail fast with
    :class:`~repro.errors.EvaluationError` instead of expanding
    exponentially.

    >>> from repro.relational import Schema
    >>> from repro.logic import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> est = query_probability_karp_luby(q, table, 3000, random.Random(1))
    >>> abs(est.estimate - 0.75) < 0.05
    True
    """
    with obs.trace() as t:
        with obs.phase("lineage"):
            expr = lineage_of(query.formula, set(table.marginals))
            terms = lineage_to_dnf(expr, max_terms=max_terms)
        estimate = karp_luby_probability(
            terms, table, samples, rng,
            backend=backend, seed=seed, batch_size=batch_size,
        )
    return obs.attach_report(estimate, obs.EvalReport.from_trace(t))

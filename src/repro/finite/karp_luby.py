"""The Karp–Luby unbiased estimator for DNF/UCQ probability.

Naive Monte Carlo needs ``Ω(1/P(Q))`` samples to see a single positive
world when ``P(Q)`` is small.  The Karp–Luby scheme samples from the
*union space* — pick a DNF term with probability proportional to its
(exactly computable) probability, sample a world conditioned on that
term being true, and count whether the chosen term is the *first*
satisfied one.  The estimate ``(Σ P(term_i)) · (hits / samples)`` is
unbiased with relative error independent of ``P(Q)`` — an FPRAS for DNF.

Here terms come from a Boolean query's lineage in DNF, or directly from
the CQs of a UCQ grounded against a TI table.
"""

from __future__ import annotations

import random
from typing import Callable, List, NamedTuple, Sequence, Set, Tuple

from repro.errors import EvaluationError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.lineage import Lineage, lineage_of
from repro.logic.queries import BooleanQuery
from repro.relational.facts import Fact


class DNFTerm(NamedTuple):
    """One conjunctive term: facts that must be present / absent."""

    positive: frozenset
    negative: frozenset

    def probability(self, marginal: Callable[[Fact], float]) -> float:
        """Exact ``P(term)`` under tuple independence."""
        probability = 1.0
        for fact in self.positive:
            probability *= marginal(fact)
        for fact in self.negative:
            probability *= 1.0 - marginal(fact)
        return probability

    def satisfied_by(self, world: Set[Fact]) -> bool:
        return self.positive <= world and not (self.negative & world)


def lineage_to_dnf(expr: Lineage) -> List[DNFTerm]:
    """Expand a lineage into DNF terms (exponential in the worst case;
    intended for union-of-conjunctions shapes where it is linear).

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> expr = Lineage.disj([Lineage.var(R(1)),
    ...                      Lineage.conj([Lineage.var(R(2)),
    ...                                    Lineage.negation(Lineage.var(R(3)))])])
    >>> sorted(len(t.positive) for t in lineage_to_dnf(expr))
    [1, 1]
    """
    node = expr.node
    tag = node[0]
    if tag == "true":
        return [DNFTerm(frozenset(), frozenset())]
    if tag == "false":
        return []
    if tag == "var":
        return [DNFTerm(frozenset({node[1]}), frozenset())]
    if tag == "not":
        inner = Lineage(node[1])
        if inner.node[0] == "var":
            return [DNFTerm(frozenset(), frozenset({inner.node[1]}))]
        # Push negation inward and retry (De Morgan via the constructors).
        pushed = _push_negation(inner)
        return lineage_to_dnf(pushed)
    if tag == "or":
        terms: List[DNFTerm] = []
        for child in node[1]:
            terms.extend(lineage_to_dnf(Lineage(child)))
        return terms
    if tag == "and":
        result = [DNFTerm(frozenset(), frozenset())]
        for child in node[1]:
            child_terms = lineage_to_dnf(Lineage(child))
            result = [
                DNFTerm(a.positive | b.positive, a.negative | b.negative)
                for a in result
                for b in child_terms
                if not ((a.positive | b.positive) & (a.negative | b.negative))
            ]
            if not result:
                return []
        return result
    raise EvaluationError(f"unknown lineage node {node!r}")


def _push_negation(expr: Lineage) -> Lineage:
    """One-level De Morgan push for negated conjunctions/disjunctions."""
    node = expr.node
    tag = node[0]
    if tag == "and":
        return Lineage.disj(
            [Lineage.negation(Lineage(child)) for child in node[1]])
    if tag == "or":
        return Lineage.conj(
            [Lineage.negation(Lineage(child)) for child in node[1]])
    if tag == "not":
        return Lineage(node[1])
    if tag == "true":
        return Lineage.false()
    if tag == "false":
        return Lineage.true()
    return Lineage.negation(expr)


class KarpLubyEstimate(NamedTuple):
    estimate: float
    samples: int
    #: Σ P(term_i): the union-bound normalizer.
    term_mass: float


def karp_luby_probability(
    terms: Sequence[DNFTerm],
    table: TupleIndependentTable,
    samples: int,
    rng: random.Random,
) -> KarpLubyEstimate:
    """Unbiased DNF probability estimate via the Karp–Luby scheme.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> terms = [DNFTerm(frozenset({R(1)}), frozenset()),
    ...          DNFTerm(frozenset({R(2)}), frozenset())]
    >>> est = karp_luby_probability(terms, table, 4000, random.Random(0))
    >>> abs(est.estimate - 0.75) < 0.05
    True
    """
    if samples <= 0:
        raise EvaluationError("samples must be positive")
    if not terms:
        return KarpLubyEstimate(0.0, samples, 0.0)
    weights = [term.probability(table.marginal) for term in terms]
    term_mass = sum(weights)
    if term_mass == 0.0:
        return KarpLubyEstimate(0.0, samples, 0.0)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    all_facts = table.facts()
    hits = 0
    for _ in range(samples):
        # 1. Pick a term ∝ its probability.
        u = rng.random() * term_mass
        index = _bisect(cumulative, u)
        term = terms[index]
        # 2. Sample a world conditioned on the term being satisfied.
        world: Set[Fact] = set(term.positive)
        for fact in all_facts:
            if fact in term.positive or fact in term.negative:
                continue
            if rng.random() < table.marginal(fact):
                world.add(fact)
        # 3. Count iff the chosen term is the *first* satisfied term.
        first = next(
            i for i, t in enumerate(terms) if t.satisfied_by(world)
        )
        if first == index:
            hits += 1
    return KarpLubyEstimate(term_mass * hits / samples, samples, term_mass)


def _bisect(cumulative: List[float], value: float) -> int:
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] <= value:
            low = mid + 1
        else:
            high = mid
    return low


def query_probability_karp_luby(
    query: BooleanQuery,
    table: TupleIndependentTable,
    samples: int,
    rng: random.Random,
) -> KarpLubyEstimate:
    """Karp–Luby estimate for a Boolean query via its lineage DNF.

    >>> from repro.relational import Schema
    >>> from repro.logic import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> est = query_probability_karp_luby(q, table, 3000, random.Random(1))
    >>> abs(est.estimate - 0.75) < 0.05
    True
    """
    expr = lineage_of(query.formula, set(table.marginals))
    terms = lineage_to_dnf(expr)
    return karp_luby_probability(terms, table, samples, rng)

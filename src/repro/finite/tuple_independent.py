"""Finite tuple-independent tables.

A TI table lists possible facts with marginal probabilities; all fact
events are independent.  It is the finite special case of the paper's
Theorem 4.8 construction (``Σ p_f`` trivially converges) and the output
of the Section 6 truncation ``truncate(n)`` of a countable TI PDB.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.products import product_complement
from repro.errors import ProbabilityError
from repro.finite.pdb import FinitePDB
from repro.relational.facts import Fact
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.utils.iteration import powerset
from repro.utils.rationals import validate_probability


class TupleIndependentTable:
    """A finite TI table: possible facts annotated with marginals.

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.8, R(2): 0.5})
    >>> round(table.instance_probability(Instance([R(1)])), 10)
    0.4
    >>> table.expected_size()
    1.3
    """

    def __init__(self, schema: Schema, marginals: Mapping[Fact, float]):
        self.schema = schema
        self.marginals: Dict[Fact, float] = {}
        #: Lazy columnar mirror (see :meth:`columns`); kept in sync by
        #: :meth:`extend` once built, dropped from pickles.
        self._columns = None
        for fact, probability in marginals.items():
            validate_probability(probability, what=f"marginal of {fact}")
            if fact.relation not in schema:
                from repro.errors import SchemaError

                raise SchemaError(f"fact {fact} not over schema {schema}")
            if probability > 0:
                self.marginals[fact] = float(probability)

    def extend(self, marginals: Mapping[Fact, float]) -> None:
        """Add possible facts *in place*, with the same validation as
        construction.  Re-listing an existing fact with an unchanged
        marginal is a no-op; changing its marginal is rejected (the
        incremental-truncation caller must never rewrite history).
        """
        from repro.errors import SchemaError

        for fact, probability in marginals.items():
            validate_probability(probability, what=f"marginal of {fact}")
            if fact.relation not in self.schema:
                raise SchemaError(f"fact {fact} not over schema {self.schema}")
            if probability <= 0:
                continue
            existing = self.marginals.get(fact)
            if existing is not None and existing != float(probability):
                raise ProbabilityError(
                    f"extend would change the marginal of {fact} "
                    f"from {existing} to {probability}"
                )
            probability = float(probability)
            if existing is None and self._columns is not None:
                # O(delta): the columnar mirror grows in place, so warm
                # ε-sweep state stays valid across truncation growth.
                self._columns.intern(fact, probability)
            self.marginals[fact] = probability

    @property
    def columns(self):
        """The table's columnar mirror — interned facts plus a marginal
        column (:class:`repro.relational.columns.ColumnStore`).

        Built lazily on first use (row order = dict insertion order),
        then maintained in place by :meth:`extend`; serves the
        vectorized aggregate paths (:meth:`expected_size`,
        :meth:`empty_world_probability`, marginal-slice gathers).
        """
        if self._columns is None:
            from repro.relational.columns import ColumnStore

            store = ColumnStore(backend="auto")
            store.extend_items(self.marginals.items())
            self._columns = store
        return self._columns

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.marginals)

    def facts(self) -> List[Fact]:
        """Possible facts in canonical order."""
        return sorted(self.marginals)

    def marginal(self, fact: Fact) -> float:
        """``P(E_f)``; 0 for unlisted facts (closed world)."""
        return self.marginals.get(fact, 0.0)

    def expected_size(self) -> float:
        """``E(S) = Σ p_f`` (eq. (5) of the paper, finite case)."""
        return self.columns.sum_marginals()

    def marginal_values(self, facts: Iterable[Fact]):
        """Marginal slice for the given (listed) facts — a list on the
        pure-Python backend, an ndarray on the numpy backend."""
        return self.columns.gather_facts(facts)

    def instance_probability(self, instance: Instance) -> float:
        """The Theorem 4.8 product
        ``P({D}) = Π_{f∈D} p_f · Π_{f∈F−D} (1 − p_f)``.

        Zero for instances containing impossible facts.
        """
        product = 1.0
        for fact in instance:
            p = self.marginals.get(fact)
            if p is None:
                return 0.0
            product *= p
        absent = (
            p for fact, p in self.marginals.items() if fact not in instance
        )
        return product * product_complement(absent)

    def empty_world_probability(self) -> float:
        """``P({∅}) = Π (1 − p_f)`` — the ``P₁({∅})`` of Theorem 5.5."""
        return self.columns.complement_product()

    # ------------------------------------------------------------- conversions
    def expand(self) -> FinitePDB:
        """Materialize all 2^n possible worlds as a :class:`FinitePDB`.

        Exponential — intended for validation at small n.
        """
        if len(self.marginals) > 24:
            raise ProbabilityError(
                f"refusing to expand {len(self.marginals)} facts "
                f"({2 ** len(self.marginals)} worlds)"
            )
        worlds: Dict[Instance, float] = {}
        for subset in powerset(self.marginals):
            instance = Instance(subset)
            worlds[instance] = self.instance_probability(instance)
        return FinitePDB(self.schema, worlds)

    def restrict(self, facts: Iterable[Fact]) -> "TupleIndependentTable":
        """Sub-table containing only the given facts."""
        wanted = set(facts)
        return TupleIndependentTable(
            self.schema,
            {f: p for f, p in self.marginals.items() if f in wanted},
        )

    def top(self, n: int) -> "TupleIndependentTable":
        """Sub-table of the n most probable facts (ties broken by the
        canonical fact order) — the Ω_n truncation workhorse."""
        ranked = sorted(
            self.marginals.items(), key=lambda item: (-item[1], item[0].sort_key())
        )
        return TupleIndependentTable(self.schema, dict(ranked[:n]))

    # ---------------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> Instance:
        """Draw a world: independent Bernoulli per fact."""
        return Instance(
            fact for fact, p in self.marginals.items() if rng.random() < p
        )

    def sample_many(self, n: int, rng: random.Random) -> List[Instance]:
        return [self.sample(rng) for _ in range(n)]

    def sample_batch(
        self,
        n: int,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        backend: str = "auto",
        batch_index: int = 0,
    ) -> List[Instance]:
        """Draw ``n`` worlds at once with a :mod:`repro.sampling` kernel.

        Reproducible from ``(seed, batch_index)``; ``backend="scalar"``
        falls back to the per-fact :meth:`sample` loop.
        """
        if backend == "scalar":
            if rng is None:
                if seed is None:
                    raise ValueError("provide rng= or seed=")
                rng = random.Random(seed)
            return self.sample_many(n, rng)
        from repro.sampling import sample_instances

        return sample_instances(
            self, n, rng=rng, seed=seed, backend=backend,
            batch_index=batch_index,
        )

    # ---------------------------------------------------------------- pickling
    def __getstate__(self):
        """Drop the columnar mirror, like
        :class:`~repro.core.fact_distribution.FactDistribution` drops
        its prefix cache: the ``workers=`` process-pool fan-out must not
        ship arrays that are pure derived state (they rebuild lazily on
        first use in the worker)."""
        state = dict(self.__dict__)
        state["_columns"] = None
        return state

    def __repr__(self) -> str:
        return (
            f"TupleIndependentTable(facts={len(self.marginals)}, "
            f"expected_size={self.expected_size():.4g})"
        )

"""The finite representation theorem (paper §4.3, positive direction).

"Every finite PDB is FO-definable over a tuple-independent finite PDB"
[Suciu et al.].  This module implements the classical construction:

* number the worlds ``D₁, …, D_m`` of the finite PDB;
* build a TI table over fresh *selector* facts ``W(1), …, W(m−1)`` with
  probabilities chosen so the events "the first selector present is
  W(i)" (or none) have exactly the world probabilities — a sequential
  (inverse-transform) encoding;
* define the FO view mapping each selector outcome to its world.

Proposition 4.9 is precisely the statement that this recipe (and every
other) *fails* for some countable PDBs; having the finite construction
executable makes the contrast concrete (E3 territory).

The selector-to-world mapping is not FO over the selector vocabulary
alone for arbitrary worlds (worlds are data, not logic), so — as in the
standard textbook construction — the view's formulas carry the worlds as
constants: for each target relation R,

    φ_R(x̄) = ⋁_i ( "world i selected" ∧ x̄ ∈ R^{D_i} )

where "world i selected" = W(i) ∧ ¬W(1) ∧ … ∧ ¬W(i−1) for i < m, and
``¬W(1) ∧ … ∧ ¬W(m−1)`` selects the last world.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ProbabilityError
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.queries import FOView
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Formula,
    Not,
    Variable,
    conjoin,
    disjoin,
)
from repro.relational.instance import Instance
from repro.relational.schema import RelationSymbol, Schema


def _selector_probabilities(world_masses: List[float]) -> List[float]:
    """Sequential encoding: q_i = P(select world i | not 1..i−1).

    With selectors independent and q_i as below, the event "W(i) is the
    first present selector" has probability exactly world_masses[i], and
    "no selector present" has the last world's mass.
    """
    qs: List[float] = []
    remaining = 1.0
    for mass in world_masses[:-1]:
        if remaining <= 0:
            qs.append(0.0)
            continue
        qs.append(min(1.0, mass / remaining))
        remaining -= mass
    return qs


def represent_over_tuple_independent(
    pdb: FinitePDB,
    selector_name: str = "W",
) -> Tuple[TupleIndependentTable, FOView]:
    """Build ``(C, V)`` with C tuple-independent and ``V(C) = pdb``.

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> correlated = FinitePDB(schema, {
    ...     Instance([R(1), R(2)]): 0.5,   # perfectly correlated facts —
    ...     Instance(): 0.5,               # not tuple-independent itself
    ... })
    >>> table, view = represent_over_tuple_independent(correlated)
    >>> image = apply_representation(table, view)
    >>> round(image.probability_of(Instance([R(1), R(2)])), 9)
    0.5
    """
    worlds = sorted(pdb.worlds, key=Instance.sort_key)
    masses = [pdb.probability_of(w) for w in worlds]
    if not worlds:
        raise ProbabilityError("cannot represent an empty PDB")
    selector = RelationSymbol(selector_name, 1)
    if selector_name in (r.name for r in pdb.schema):
        raise ProbabilityError(
            f"selector relation {selector_name!r} collides with the schema"
        )
    source = Schema([selector])
    qs = _selector_probabilities(masses)
    table = TupleIndependentTable(
        source, {selector(i + 1): q for i, q in enumerate(qs)}
    )

    def selected(i: int) -> Formula:
        """'World i is selected' over the selector vocabulary."""
        negatives: List[Formula] = [
            Not(Atom(selector, (Constant(j + 1),))) for j in range(i)
        ]
        if i < len(qs):
            return conjoin([Atom(selector, (Constant(i + 1),))] + negatives)
        return conjoin(negatives)  # none present → last world

    formulas: Dict[str, object] = {}
    target_relations = sorted(
        {f.relation for w in worlds for f in w}, key=lambda r: r.name
    )
    if not target_relations:
        # All worlds empty: represent with a trivial 0-ary relation view.
        target_relations = [RelationSymbol("Empty", 0)]
    target = Schema(target_relations)
    for relation in target_relations:
        variables = tuple(
            Variable(f"x{i}") for i in range(relation.arity)
        )
        disjuncts: List[Formula] = []
        for i, world in enumerate(worlds):
            tuples = world.relation(relation)
            if not tuples:
                continue
            membership = disjoin([
                conjoin([
                    _equals(variables[j], value)
                    for j, value in enumerate(args)
                ])
                for args in sorted(tuples, key=repr)
            ])
            disjuncts.append(And(selected(i), membership))
        formulas[relation.name] = (disjoin(disjuncts), variables)
    view = FOView(source, target, formulas)
    return table, view


def _equals(variable: Variable, value) -> Formula:
    from repro.logic.syntax import Equals

    return Equals(variable, Constant(value))


def apply_representation(
    table: TupleIndependentTable, view: FOView
) -> FinitePDB:
    """Evaluate the representation: pushforward of the TI table under
    the view (the right-hand side of ``D = V(C)``)."""
    from repro.finite.views import apply_view

    return apply_view(view, table)


def verify_representation(pdb: FinitePDB, tolerance: float = 1e-9) -> float:
    """Round-trip check: build the representation, push it forward, and
    return the largest world-probability discrepancy.

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> pdb = FinitePDB(schema, {Instance([R(1)]): 0.3, Instance(): 0.7})
    >>> verify_representation(pdb) < 1e-9
    True
    """
    table, view = represent_over_tuple_independent(pdb)
    image = apply_representation(table, view)
    worst = 0.0
    for world in set(pdb.worlds) | set(image.worlds):
        worst = max(
            worst,
            abs(pdb.probability_of(world) - image.probability_of(world)),
        )
    if worst > tolerance:
        raise ProbabilityError(
            f"representation mismatch {worst:.3g} > {tolerance}"
        )
    return worst

"""Finite block-independent-disjoint (BID) tables (paper §4.4).

Facts are partitioned into blocks; facts within a block are mutually
exclusive, facts across blocks independent (Definition 4.11 in the
finite/countable reading of Lemma 4.12).  A block with total mass < 1
leaves the complementary mass ``p_⊥`` on "no fact from this block"
(the paper's remainder mass).

Classical use: one block per key value to encode key constraints — the
Trio/MayBMS/MystiQ representation the paper cites.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ProbabilityError, SchemaError
from repro.finite.pdb import FinitePDB
from repro.relational.facts import Fact
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.utils.rationals import validate_probability


class Block:
    """One block: alternative facts with probabilities summing to ≤ 1.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> b = Block("b", {R(1): 0.3, R(2): 0.5})
    >>> round(b.bottom_mass, 10)
    0.2
    """

    def __init__(self, name: str, alternatives: Mapping[Fact, float]):
        self.name = name
        self.alternatives: Dict[Fact, float] = {}
        total = 0.0
        for fact, probability in alternatives.items():
            validate_probability(probability, what=f"probability of {fact}")
            if probability > 0:
                self.alternatives[fact] = float(probability)
                total += probability
        if total > 1 + 1e-12:
            raise ProbabilityError(
                f"block {name!r} has total mass {total} > 1"
            )
        #: ``p_⊥``: the remainder mass on "no fact from this block".
        self.bottom_mass = max(0.0, 1.0 - total)

    def facts(self) -> List[Fact]:
        return sorted(self.alternatives)

    def probability(self, fact: Optional[Fact]) -> float:
        """``p_f`` for a fact of the block, or ``p_⊥`` for None."""
        if fact is None:
            return self.bottom_mass
        return self.alternatives.get(fact, 0.0)

    def sample(self, rng: random.Random) -> Optional[Fact]:
        u = rng.random()
        acc = 0.0
        for fact in self.facts():
            acc += self.alternatives[fact]
            if u < acc:
                return fact
        return None

    def __len__(self) -> int:
        return len(self.alternatives)

    def __repr__(self) -> str:
        return f"Block({self.name!r}, facts={len(self.alternatives)})"


class BlockIndependentTable:
    """A finite BID table: independent blocks of disjoint alternatives.

    >>> from repro.relational import RelationSymbol
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = BlockIndependentTable(schema, [
    ...     Block("k1", {R(1): 0.5, R(2): 0.5}),
    ...     Block("k2", {R(3): 0.25}),
    ... ])
    >>> round(table.instance_probability(Instance([R(1), R(3)])), 10)
    0.125
    >>> table.instance_probability(Instance([R(1), R(2)]))   # same block
    0.0
    """

    def __init__(self, schema: Schema, blocks: Sequence[Block]):
        self.schema = schema
        self.blocks: Tuple[Block, ...] = tuple(blocks)
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise ProbabilityError("block names must be distinct")
        self._block_of: Dict[Fact, Block] = {}
        #: Lazy columnar mirror (facts, marginals, block ordinals);
        #: kept in sync by :meth:`extend` once built, not pickled.
        self._columns = None
        for block in self.blocks:
            for fact in block.alternatives:
                if fact.relation not in schema:
                    raise SchemaError(f"fact {fact} not over schema {schema}")
                if fact in self._block_of:
                    raise ProbabilityError(
                        f"fact {fact} appears in two blocks"
                    )
                self._block_of[fact] = block

    def extend(self, blocks: Iterable[Block]) -> None:
        """Append blocks *in place*, with the same name/disjointness
        validation as construction.  All-or-nothing: the table is
        untouched if any new block is invalid."""
        new_blocks = tuple(blocks)
        names = {b.name for b in self.blocks}
        added: Dict[Fact, Block] = {}
        for block in new_blocks:
            if block.name in names:
                raise ProbabilityError("block names must be distinct")
            names.add(block.name)
            for fact in block.alternatives:
                if fact.relation not in self.schema:
                    raise SchemaError(
                        f"fact {fact} not over schema {self.schema}")
                if fact in self._block_of or fact in added:
                    raise ProbabilityError(
                        f"fact {fact} appears in two blocks"
                    )
                added[fact] = block
        self._block_of.update(added)
        if self._columns is not None:
            # O(delta): new blocks append below the existing rows.
            base = len(self.blocks)
            for ordinal, block in enumerate(new_blocks, start=base):
                self._columns.extend_items(
                    block.alternatives.items(), block=ordinal)
        self.blocks = self.blocks + new_blocks

    @property
    def columns(self):
        """Columnar mirror: one row per alternative fact, with its
        marginal and its block's ordinal in :attr:`blocks` (see
        :class:`repro.relational.columns.ColumnStore`)."""
        if self._columns is None:
            from repro.relational.columns import ColumnStore

            store = ColumnStore(backend="auto")
            for ordinal, block in enumerate(self.blocks):
                store.extend_items(
                    block.alternatives.items(), block=ordinal)
            self._columns = store
        return self._columns

    def __getstate__(self):
        """Drop the columnar mirror from pickles (fan-out payloads
        rebuild it lazily in the worker)."""
        state = dict(self.__dict__)
        state["_columns"] = None
        return state

    # ------------------------------------------------------------------ basics
    def facts(self) -> List[Fact]:
        return sorted(self._block_of)

    def block_of(self, fact: Fact) -> Optional[Block]:
        return self._block_of.get(fact)

    def marginal(self, fact: Fact) -> float:
        block = self._block_of.get(fact)
        if block is None:
            return 0.0
        return block.probability(fact)

    def expected_size(self) -> float:
        """``Σ_f p_f`` — finite, per Lemma 4.14's convergence."""
        return self.columns.sum_marginals()

    def is_good(self, instance: Instance) -> bool:
        """Good instances contain at most one fact per block (paper
        terminology in the proof of Proposition 4.13)."""
        seen: set = set()
        for fact in instance:
            block = self._block_of.get(fact)
            if block is None:
                return False
            if block.name in seen:
                return False
            seen.add(block.name)
        return True

    def instance_probability(self, instance: Instance) -> float:
        """The Proposition 4.13 product ``Π_B p_{β(B, D)}``; 0 for bad
        instances."""
        if not self.is_good(instance):
            return 0.0
        chosen: Dict[str, Fact] = {}
        for fact in instance:
            chosen[self._block_of[fact].name] = fact
        product = 1.0
        for block in self.blocks:
            product *= block.probability(chosen.get(block.name))
            if product == 0.0:
                return 0.0
        return product

    # ------------------------------------------------------------- conversions
    def expand(self) -> FinitePDB:
        """Materialize all good worlds (product of per-block choices)."""
        world_count = 1
        for block in self.blocks:
            world_count *= len(block.alternatives) + 1
            if world_count > 2**24:
                raise ProbabilityError("refusing to expand: too many worlds")
        worlds: Dict[Instance, float] = {}
        choices = [
            [None] + block.facts() for block in self.blocks
        ]
        for combo in itertools.product(*choices):
            instance = Instance(fact for fact in combo if fact is not None)
            probability = 1.0
            for block, fact in zip(self.blocks, combo):
                probability *= block.probability(fact)
            if probability > 0:
                worlds[instance] = worlds.get(instance, 0.0) + probability
        return FinitePDB(self.schema, worlds)

    def to_tuple_independent(self) -> "TupleIndependentTable":
        """Forget block structure (only valid if all blocks are
        singletons — the 'special case with singleton blocks')."""
        from repro.finite.tuple_independent import TupleIndependentTable

        for block in self.blocks:
            if len(block) > 1:
                raise ProbabilityError(
                    f"block {block.name!r} has {len(block)} alternatives; "
                    "not a tuple-independent table"
                )
        marginals = {
            fact: block.alternatives[fact]
            for block in self.blocks
            for fact in block.alternatives
        }
        return TupleIndependentTable(self.schema, marginals)

    # ---------------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> Instance:
        facts = []
        for block in self.blocks:
            fact = block.sample(rng)
            if fact is not None:
                facts.append(fact)
        return Instance(facts)

    def sample_batch(
        self,
        n: int,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        backend: str = "auto",
        batch_index: int = 0,
    ) -> List[Instance]:
        """Draw ``n`` worlds at once with a :mod:`repro.sampling` kernel.

        The batched path pre-materialises each block's cumulative
        weights once instead of re-sorting alternatives per draw;
        ``backend="scalar"`` keeps the per-block :meth:`sample` loop.
        """
        if backend == "scalar":
            if rng is None:
                if seed is None:
                    raise ValueError("provide rng= or seed=")
                rng = random.Random(seed)
            return [self.sample(rng) for _ in range(n)]
        from repro.sampling import sample_instances

        return sample_instances(
            self, n, rng=rng, seed=seed, backend=backend,
            batch_index=batch_index,
        )

    def __repr__(self) -> str:
        return (
            f"BlockIndependentTable(blocks={len(self.blocks)}, "
            f"facts={len(self._block_of)})"
        )

"""Ranked enumeration of the most probable worlds of a TI table.

A best-first search over partial fact decisions: the most probable world
takes each fact's majority choice (present iff ``p_f > 1/2``); the k-th
world is found by branching one fact decision at a time, ordered by the
probability penalty ``min(p, 1−p)/max(p, 1−p)`` of flipping it.  Runs in
``O(k log k · n)`` without enumerating the 2^n world space — the classic
"top-k possible worlds" primitive of probabilistic-database systems.

Also exposed for countable TI PDBs via their truncations: the globally
most probable worlds of the infinite PDB coincide with those of a
truncation once the truncated tail mass is below the k-th world's
probability gap.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Tuple

from repro.errors import ProbabilityError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational.instance import Instance


def top_k_worlds(
    table: TupleIndependentTable, k: int
) -> List[Tuple[Instance, float]]:
    """The k most probable worlds, most probable first.

    Ties are broken deterministically by the flip set's lexicographic
    order (the branching structure), so results are reproducible.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.9, R(2): 0.2})
    >>> [(sorted(map(str, w)), round(p, 4)) for w, p in top_k_worlds(table, 2)]
    [(['R(1)'], 0.72), (['R(1)', 'R(2)'], 0.18)]
    """
    if k <= 0:
        raise ProbabilityError("k must be positive")
    return list(itertools.islice(iter_worlds_by_probability(table), k))


def iter_worlds_by_probability(
    table: TupleIndependentTable,
) -> Iterator[Tuple[Instance, float]]:
    """Lazily yield all worlds in non-increasing probability order.

    Uses the Lawler-style branching scheme: a state is a set of flips
    against the mode world, represented by the index of the last flipped
    fact plus the accumulated penalty; children extend or advance the
    last flip.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.6, R(2): 0.6})
    >>> probabilities = [p for _, p in iter_worlds_by_probability(table)]
    >>> probabilities == sorted(probabilities, reverse=True)
    True
    >>> abs(sum(probabilities) - 1.0) < 1e-12
    True
    """
    facts = table.facts()
    probabilities = [float(p) for p in table.marginal_values(facts)]
    # Mode world: include iff p > 1/2; its probability is the max.
    mode_probability = 1.0
    penalties: List[float] = []
    for p in probabilities:
        keep = max(p, 1.0 - p)
        flip = min(p, 1.0 - p)
        mode_probability *= keep
        penalties.append(flip / keep if keep > 0 else 0.0)
    # Sort facts by DESCENDING flip penalty: the "advance" move then
    # always multiplies by penalty[i+1]/penalty[i] ≤ 1, so children never
    # outrank their parents — required for best-first correctness.
    order = sorted(range(len(facts)), key=lambda i: -penalties[i])
    ordered_facts = [facts[i] for i in order]
    ordered_penalties = [penalties[i] for i in order]
    mode_presence = [probabilities[i] > 0.5 for i in order]

    def realize(flips: frozenset) -> Instance:
        present = []
        for index, fact in enumerate(ordered_facts):
            keep = mode_presence[index]
            if index in flips:
                keep = not keep
            if keep:
                present.append(fact)
        return Instance(present)

    if mode_probability == 0.0:
        # Some fact has p exactly 0.5... no: then keep=0.5 ≠ 0.  p ∈ {0,1}
        # never reaches here (0-facts dropped, 1-facts have flip 0 — flip
        # worlds carry probability 0 but are still enumerated last).
        pass
    # Heap of (negative probability, flip tuple).  Start with no flips.
    seen = {frozenset()}
    heap: List[Tuple[float, Tuple[int, ...]]] = [(-mode_probability, ())]
    n = len(ordered_facts)
    while heap:
        negative, flips = heapq.heappop(heap)
        probability = -negative
        yield realize(frozenset(flips)), probability
        last = flips[-1] if flips else -1
        # Children: (a) add a new flip after the last; (b) advance the
        # last flip to the next index (Lawler partitioning — every flip
        # set is generated exactly once).
        for child_kind in ("extend", "advance"):
            if child_kind == "extend":
                nxt = last + 1
                if nxt >= n:
                    continue
                child = flips + (nxt,)
                child_probability = probability * ordered_penalties[nxt]
            else:
                if not flips or last + 1 >= n:
                    continue
                child = flips[:-1] + (last + 1,)
                child_probability = (
                    probability
                    / max(ordered_penalties[last], 1e-300)
                    * ordered_penalties[last + 1]
                )
            key = frozenset(child)
            if key not in seen:
                seen.add(key)
                heapq.heappush(heap, (-child_probability, child))


def most_probable_world(table: TupleIndependentTable) -> Tuple[Instance, float]:
    """The single most probable world (mode): include iff ``p_f > 1/2``.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> world, p = most_probable_world(
    ...     TupleIndependentTable(schema, {R(1): 0.9, R(2): 0.2}))
    >>> str(next(iter(world))), round(p, 4)
    ('R(1)', 0.72)
    """
    return top_k_worlds(table, 1)[0]

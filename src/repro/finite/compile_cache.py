"""Compiled-lineage evaluation: ROBDD compilation shared across calls.

Proposition 6.1's cost is dominated by the finite evaluations
``P(Q | Ω_n)`` it runs on truncations — and those evaluations repeat:
``truncation_profile`` sweeps ε over the same query, repeated calls at
shrinking ε grow the truncation monotonically, and answer-marginal
fan-outs ground one formula over many answer tuples.  Knowledge
compilation turns each of these into *compile once, score linearly*:

* :class:`CompileCache` memoizes compiled diagrams keyed by
  ``(query fingerprint, possible-fact-set fingerprint)``.  Each query
  owns one :class:`~repro.finite.bdd.BDDManager`; a new fact set
  (e.g. a larger truncation Ω_m ⊇ Ω_n) *extends* the manager's variable
  order and recompiles against the already hash-consed node store and
  apply cache instead of starting cold.  Re-scoring a cached diagram
  under new marginals is a single linear weighted-model-counting pass.
* :class:`SharedGrounding` serves non-Boolean fan-outs: every answer
  tuple's grounded sentence compiles into the *same* manager, so
  sub-diagrams shared between answers exist once, and one shared
  probability memo scores them all (valid because the marginals are
  fixed within a fan-out).
* :func:`bid_bdd_probability` scores a compiled diagram under a BID
  table by branching over blocks with :meth:`BDDManager.restrict` —
  the diagram-space analogue of the block-aware Shannon expansion.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Optional,
    Tuple,
)

from repro import obs
from repro.errors import EvaluationError, UnsafeQueryError
from repro.finite.bdd import BDDManager, BDDRef, ONE, ZERO
from repro.finite.bid import BlockIndependentTable
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.analysis import free_variables
from repro.logic.lineage import Lineage, lineage_of
from repro.logic.syntax import Formula, Variable
from repro.relational.facts import Fact, Value
from repro.relational.index import FactIndex


class CompiledQuery:
    """A compiled lineage: a root in a (possibly shared) manager.

    Probability under any independent marginals is one linear pass; the
    diagram itself depends only on the query and the possible-fact set,
    never on the marginals — which is exactly what makes it reusable
    across ε-calls and truncation sweeps.
    """

    __slots__ = ("manager", "root")

    def __init__(self, manager: BDDManager, root: BDDRef):
        self.manager = manager
        self.root = root

    def probability(
        self,
        marginal: Callable[[Fact], float],
        cache: Optional[Dict[int, float]] = None,
    ) -> float:
        if cache is None:
            # No shared memo requested: score over the manager's cached
            # linearization (bit-identical, vectorized past the node
            # threshold) — the hot rescore path of ε-sweeps.
            return self.manager.rescore(self.root, marginal)
        return self.manager.probability(self.root, marginal, cache)

    def restrict(self, fact: Fact, value: bool) -> "CompiledQuery":
        return CompiledQuery(
            self.manager, self.manager.restrict(self.root, fact, value))

    def size(self) -> int:
        """Nodes reachable from the root."""
        return self.manager.count_nodes(self.root)

    def __repr__(self) -> str:
        return f"CompiledQuery(size={self.size()})"


class LiftedExecState:
    """Per-family runtime state of the batched lifted executor.

    Everything here is keyed by plan-node ``id`` — sound because the
    family owns its plan objects (``_Family.lifted``) for as long as it
    owns this state, and both are dropped together on family eviction.

    * ``node_caches`` — delta-extended binding tables of root-level
      projects (:class:`repro.finite.lifted._ProjectDeltaCache`): an
      ε-sweep's next truncation re-executes only the separator values
      its delta facts touch.
    * ``annotations`` — the grouped-execution side tables
      (:func:`repro.logic.hierarchy.grouped_plan_info`), one per cached
      plan root.
    * ``candidate_memo`` — the scalar path's per-(node, epoch)
      separator-candidate memo.
    * ``lock`` — held across a whole batched run, *including* the
      grounding step.  When the state belongs to a compile-cache family
      this is the family's own stripe lock: the batched executor's
      binding tables and marginal columns assume the shared index holds
      exactly the evaluated table's facts, and another session of the
      same family grounding a different truncation mid-run would
      silently break that (the index would gain rows whose marginal is
      still 0.0 in *this* table, poisoning the caches once the table
      catches up).

    Runtime-only: excluded from family pickles and rebuilt empty on
    restore (snapshots re-warm in one run).
    """

    __slots__ = ("lock", "node_caches", "annotations", "candidate_memo")

    def __init__(self, lock: Optional[threading.RLock] = None) -> None:
        self.lock = lock if lock is not None else threading.RLock()
        self.node_caches: Dict[int, object] = {}
        self.annotations: Dict[int, Dict[int, object]] = {}
        self.candidate_memo: Dict[object, tuple] = {}

    def annotations_for(self, plan) -> Dict[int, object]:
        """The grouped-execution side table of one cached plan root,
        computed once per (family, plan object)."""
        info = self.annotations.get(id(plan))
        if info is None:
            from repro.logic.hierarchy import grouped_plan_info

            info = grouped_plan_info(plan)
            self.annotations[id(plan)] = info
        return info


class _Family:
    """All diagrams compiled for one query: a manager plus one root per
    possible-fact-set fingerprint, and one shared
    :class:`~repro.relational.index.FactIndex` the grounding engine
    delta-extends as the family's fact sets grow across truncations."""

    __slots__ = (
        "manager", "roots", "index", "lifted", "exec_state", "lock",
        "grounded_from",
    )

    def __init__(self) -> None:
        self.manager = BDDManager([])
        self.roots: "OrderedDict[FrozenSet[Fact], BDDRef]" = OrderedDict()
        self.index: Optional[FactIndex] = None
        #: Safe-plan solver results, keyed ``"strict"`` / ``"partial"``:
        #: ``("plan", plan, ucq)`` or ``("error", exc, ucq)``.  Plans are
        #: data-independent, so one entry serves every truncation of the
        #: family.
        self.lifted: Dict[str, tuple] = {}
        #: Per-family stripe: serializes root lookup/compile/eviction
        #: and plan building for *this* query, so distinct queries still
        #: compile concurrently.
        self.lock = threading.RLock()
        #: Batched-executor state for this family's plans (binding
        #: tables, annotations, candidate memo).  Shares the stripe
        #: lock so a batched run can atomically ground *and* execute.
        self.exec_state = LiftedExecState(self.lock)
        #: ``(table, fact count)`` of the last grounding — warm
        #: re-evaluations of an unchanged table (the serving hot path)
        #: skip the O(n) facts-key rebuild and subset check entirely.
        #: Runtime-only, dropped from pickles with the rest of the
        #: executor state.
        self.grounded_from: Optional[tuple] = None

    def grounding_index_for(self, pdb) -> FactIndex:
        """The family's fact index, grown to ``pdb``'s fact set.

        Tables grow in place and only ever gain facts, so the same
        table object at the same fact count is the same fact set: that
        case returns the index untouched without materializing the
        frozenset key.  Anything else goes through
        :meth:`grounding_index`.
        """
        if isinstance(pdb, TupleIndependentTable):
            size = len(pdb.marginals)
            if (
                self.grounded_from is not None
                and self.grounded_from[0] is pdb
                and self.grounded_from[1] == size
                and self.index is not None
                and len(self.index) == size
            ):
                return self.index
            index = self.grounding_index(frozenset(pdb.marginals))
            self.grounded_from = (pdb, size)
            return index
        self.grounded_from = None
        return self.grounding_index(frozenset(pdb.facts()))

    def grounding_index(self, facts_key: FrozenSet[Fact]) -> FactIndex:
        """The family's fact index, grown to exactly ``facts_key``.

        A superset key (the usual case: a monotone truncation sweep)
        extends the existing index in place — only the delta facts are
        re-indexed, counted by ``grounding.delta_facts``.  A
        non-superset key rebuilds from scratch.
        """
        # Any direct grounding (including the compiled path's) may
        # change the index's fact set: drop the warm same-table stamp,
        # grounding_index_for re-establishes it.
        self.grounded_from = None
        if self.index is not None and self.index.fact_set <= facts_key:
            added = self.index.extend(facts_key)
            if added:
                obs.incr("grounding.delta_facts", added)
        else:
            self.index = FactIndex(facts_key)
        return self.index

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Flatten roots to node ids (the manager pickles its node
        store iteratively) and drop the stripe lock."""
        return {
            "manager": self.manager,
            "roots": [
                (key, BDDManager._id(root))
                for key, root in self.roots.items()
            ],
            "index": self.index,
            "lifted": self.lifted,
        }

    def __setstate__(self, state) -> None:
        self.manager = state["manager"]
        by_id = self.manager.nodes_by_id()
        self.roots = OrderedDict(
            (key, by_id[root_id]) for key, root_id in state["roots"])
        self.index = state["index"]
        self.lifted = state["lifted"]
        self.lock = threading.RLock()
        self.exec_state = LiftedExecState(self.lock)
        self.grounded_from = None


class CompileCache:
    """LRU cache of compiled query diagrams.

    Keys are ``(formula, frozenset(possible facts))`` — both hashable by
    structure, so syntactically equal queries over equal truncations hit
    the same diagram.  Within a query family, a later superset fact set
    (a grown truncation) compiles into the same manager: the variable
    order is extended *below* the existing one, and the manager's unique
    table and apply cache carry over, so shared substructure is reused
    rather than rebuilt.

    >>> from repro.relational import Schema
    >>> from repro.logic import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> cache = CompileCache()
    >>> formula = parse_formula("EXISTS x. R(x)", schema)
    >>> small = cache.compiled(formula, frozenset({R(1)}))
    >>> large = cache.compiled(formula, frozenset({R(1), R(2)}))
    >>> small.manager is large.manager
    True
    >>> cache.stats.misses, cache.stats.hits
    (2, 0)
    >>> _ = cache.compiled(formula, frozenset({R(1), R(2)}))
    >>> cache.stats.hits
    1
    """

    def __init__(self, max_queries: int = 64, max_roots_per_query: int = 64):
        self._families: "OrderedDict[Formula, _Family]" = OrderedDict()
        self.max_queries = max_queries
        self.max_roots_per_query = max_roots_per_query
        self.stats = CacheStats()
        #: Guards the family map (lookup, insertion, LRU eviction) and
        #: the shared stats counters.  Compilation itself runs under the
        #: per-family stripe lock, so sessions working on *different*
        #: queries never serialize behind each other's compiles.
        self._lock = threading.RLock()

    def compiled(
        self, formula: Formula, possible_facts: AbstractSet[Fact]
    ) -> CompiledQuery:
        """The compiled diagram of ``formula`` over ``possible_facts``."""
        facts_key = frozenset(possible_facts)
        family = self._family(formula)
        with family.lock:
            root = family.roots.get(facts_key)
            if root is not None or facts_key in family.roots:
                family.roots.move_to_end(facts_key)
                with self._lock:
                    self.stats.hits += 1
                obs.incr("cache.hit")
                return CompiledQuery(family.manager, family.roots[facts_key])
            with self._lock:
                self.stats.misses += 1
                if family.roots:
                    self.stats.extensions += 1
            obs.incr("cache.miss")
            if family.roots:
                obs.incr("cache.extension")
            with obs.phase("compile"):
                expr = lineage_of(
                    formula, facts_key,
                    index=family.grounding_index(facts_key))
                root = family.manager.build(expr)
            obs.gauge("bdd.nodes", family.manager.count_nodes(root))
            family.roots[facts_key] = root
            while len(family.roots) > self.max_roots_per_query:
                family.roots.popitem(last=False)
            return CompiledQuery(family.manager, root)

    def _family(self, formula: Formula) -> _Family:
        with self._lock:
            family = self._families.get(formula)
            if family is None:
                family = _Family()
                self._families[formula] = family
                while len(self._families) > self.max_queries:
                    # Evicting a family another thread still holds is
                    # safe: that thread keeps its own reference and the
                    # orphaned family simply stops being shared.
                    self._families.popitem(last=False)
            self._families.move_to_end(formula)
            return family

    def lifted(
        self, formula: Formula, pdb, partial: bool = False
    ) -> Tuple[object, FactIndex]:
        """The safe plan of ``formula`` plus the family's fact index,
        grown to ``pdb``'s possible facts.

        The plan (strict, or a hybrid one containing
        :class:`~repro.logic.hierarchy.UnsafeLeaf` residue when
        ``partial=True``) is compiled once per query family and reused
        across truncations — a plan is data-independent, only the index
        grows.  Builds count in the ``lifted.plans`` obs counter, reuses
        in ``lifted.plan_cache_hits``.  Raises
        :class:`~repro.errors.UnsafeQueryError` (cached too) when the
        query has no plan of the requested kind.
        """
        from repro.logic.hierarchy import UnsafeLeaf, safe_plan_ucq
        from repro.logic.normalform import extract_ucq

        if not isinstance(
            pdb, (TupleIndependentTable, BlockIndependentTable)
        ):
            raise EvaluationError(
                "lifted evaluation needs a TI or BID table")
        family = self._family(formula)
        with family.lock:
            entry = family.lifted.get("strict")
            if entry is None:
                ucq = extract_ucq(formula)
                if ucq is None:
                    entry = (
                        "error",
                        UnsafeQueryError(
                            f"query is not a UCQ: {formula}; "
                            "use an intensional strategy"
                        ),
                        None,
                    )
                else:
                    try:
                        entry = ("plan", safe_plan_ucq(ucq), ucq)
                        obs.incr("lifted.plans")
                    except UnsafeQueryError as exc:
                        entry = ("error", exc, ucq)
                family.lifted["strict"] = entry
            else:
                obs.incr("lifted.plan_cache_hits")
            kind, payload, ucq = entry
            if kind == "plan":
                return payload, family.grounding_index_for(pdb)
            if not partial:
                raise payload
            hybrid = family.lifted.get("partial")
            if hybrid is None:
                plan = (
                    safe_plan_ucq(ucq, partial=True)
                    if ucq is not None else None
                )
                if plan is None or isinstance(plan, UnsafeLeaf):
                    # No safe component at all: partial buys nothing.
                    hybrid = ("error", payload, ucq)
                else:
                    hybrid = ("plan", plan, ucq)
                    obs.incr("lifted.plans")
                family.lifted["partial"] = hybrid
            if hybrid[0] == "error":
                raise hybrid[1]
            return hybrid[1], family.grounding_index_for(pdb)

    def lifted_state(self, formula: Formula) -> LiftedExecState:
        """The batched-executor state of ``formula``'s family — binding
        tables delta-extended across truncations, plan annotations, and
        the scalar candidate memo.  Same lifetime as the family's
        cached plans (evicted together)."""
        return self._family(formula).exec_state

    def clear(self) -> None:
        with self._lock:
            self._families.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return sum(
                len(family.roots) for family in self._families.values())

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Snapshot payload: families (flattened by their own
        ``__getstate__``), stats, and limits — locks dropped and
        recreated on restore."""
        return {
            "families": self._families,
            "max_queries": self.max_queries,
            "max_roots_per_query": self.max_roots_per_query,
            "stats": self.stats,
        }

    def __setstate__(self, state) -> None:
        self._families = state["families"]
        self.max_queries = state["max_queries"]
        self.max_roots_per_query = state["max_roots_per_query"]
        self.stats = state["stats"]
        self._lock = threading.RLock()


class CacheStats:
    """Hit/miss/extension counters of one :class:`CompileCache`."""

    __slots__ = ("hits", "misses", "extensions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.extensions = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"extensions={self.extensions})"
        )


#: The process-wide cache the ``strategy="bdd"`` dispatcher path uses.
DEFAULT_COMPILE_CACHE = CompileCache()


def bid_bdd_probability(
    manager: BDDManager,
    root: BDDRef,
    table: BlockIndependentTable,
    cache: Optional[Dict[int, float]] = None,
) -> float:
    """Probability of a compiled diagram under a BID table.

    Branches over the block of the diagram's top variable — each
    alternative plus ⊥ — restricting the whole block away per branch,
    exactly like the lineage-space block expansion but with linear-time
    ``restrict`` on the shared node store.  Memoized per node id: a node
    reached twice denotes the same Boolean function, whose probability
    under the remaining (untouched) blocks is well-defined.
    """
    if cache is None:
        cache = {}

    def recurse(node: BDDRef) -> float:
        if node == ZERO:
            return 0.0
        if node == ONE:
            return 1.0
        cached = cache.get(node.id)
        if cached is not None:
            return cached
        pivot = node.fact
        block = table.block_of(pivot)
        if block is None:
            # Fact impossible under the table: simply absent.
            value = recurse(manager.restrict(node, pivot, False))
        else:
            block_facts = block.facts()
            value = 0.0
            for chosen in block_facts + [None]:
                probability = block.probability(chosen)
                if probability == 0.0:
                    continue
                conditioned = node
                for fact in block_facts:
                    conditioned = manager.restrict(
                        conditioned, fact, fact == chosen)
                value += probability * recurse(conditioned)
        cache[node.id] = value
        return value

    return recurse(root)


def query_probability_by_bdd_cached(
    query,
    pdb,
    cache: Optional[CompileCache] = None,
) -> float:
    """Exact ``P(Q)`` via the compilation cache — the ``strategy="bdd"``
    entry point of :func:`repro.finite.evaluation.query_probability`.

    TI tables score by one weighted-model-counting pass; BID tables by
    block-aware branching over the same compiled diagram.

    >>> from repro.relational import Schema
    >>> from repro.logic import BooleanQuery, parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> query_probability_by_bdd_cached(q, table, CompileCache())
    0.75
    """
    if cache is None:
        cache = DEFAULT_COMPILE_CACHE
    if isinstance(pdb, TupleIndependentTable):
        compiled = cache.compiled(query.formula, frozenset(pdb.marginals))
        return compiled.probability(pdb.marginal)
    if isinstance(pdb, BlockIndependentTable):
        compiled = cache.compiled(query.formula, frozenset(pdb.facts()))
        return bid_bdd_probability(compiled.manager, compiled.root, pdb)
    raise EvaluationError(
        "bdd evaluation needs a TI or BID table; explicit FinitePDBs "
        "carry correlations lineage cannot factor"
    )


class SharedGrounding:
    """Shared compilation context for a non-Boolean answer fan-out.

    One manager, one hash-consed node store, one weighted-model-counting
    memo (TI) or block-branching memo (BID) serve every answer tuple:
    grounding ``Q(ā)`` and ``Q(b̄)`` typically yields heavily overlapping
    lineages, and their shared sub-diagrams are compiled and scored once.
    """

    def __init__(
        self,
        formula: Formula,
        pdb,
        base_domain: Iterable[Value],
        manager: Optional[BDDManager] = None,
        score_cache: Optional[Dict[int, float]] = None,
        index: Optional[FactIndex] = None,
        possible: Optional[FrozenSet[Fact]] = None,
    ):
        if not isinstance(
            pdb, (TupleIndependentTable, BlockIndependentTable)
        ):
            raise EvaluationError("shared grounding needs a TI or BID table")
        self.formula = formula
        self.pdb = pdb
        self.possible: FrozenSet[Fact] = (
            frozenset(pdb.facts()) if possible is None else possible)
        #: Quantifier domain shared by every answer: the active domain
        #: plus the formula's own constants.  Each answer adds its own
        #: values — matching what per-answer grounding would use.
        self.base_domain: FrozenSet[Value] = frozenset(base_domain)
        self.manager = BDDManager([]) if manager is None else manager
        self._score_cache: Dict[int, float] = (
            {} if score_cache is None else score_cache)
        #: One fact index serves every answer's grounding (and, via
        #: :meth:`extended`, every later truncation's — delta-updated).
        if index is None or len(index) != len(self.possible):
            index = FactIndex(self.possible)
        self.index = index

    def extended(self, pdb, base_domain: Iterable[Value]) -> "SharedGrounding":
        """A grounding over a *grown truncation* of the same query,
        warm-started from this one: the manager (hash-consed node store,
        apply cache), the probability memo, and the fact index carry
        over — the index is extended with only the truncation's delta
        facts.  Sound because growing a truncation never changes the
        marginal of an existing fact, and a node's weighted-model-count
        depends only on the facts in its cone — new variables cannot
        alter it."""
        new_possible = frozenset(pdb.facts())
        index = self.index
        if self.possible <= new_possible:
            added = index.extend(new_possible)
            if added:
                obs.incr("grounding.delta_facts", added)
        else:
            index = None  # shrunk truncation: rebuild in the constructor
        return SharedGrounding(
            self.formula, pdb, base_domain,
            manager=self.manager, score_cache=self._score_cache,
            index=index,
        )

    def extended_by(
        self, pdb, base_domain: Iterable[Value], delta_facts: Iterable[Fact]
    ) -> "SharedGrounding":
        """Like :meth:`extended`, for callers that already *know* the
        truncation's append-only delta (the shard-pool shipping layer
        does): the possible-fact set and the index are patched with just
        the delta facts instead of rescanning the whole table — the
        rescan is what dominates a refresh once the table dwarfs its
        per-step growth."""
        delta = frozenset(delta_facts)
        added = self.index.extend(delta)
        if added:
            obs.incr("grounding.delta_facts", added)
        return SharedGrounding(
            self.formula, pdb, base_domain,
            manager=self.manager, score_cache=self._score_cache,
            index=self.index, possible=self.possible | delta,
        )

    def answer_probability(
        self,
        variables: Tuple[Variable, ...],
        answer: Tuple[Value, ...],
    ) -> float:
        """``Pr(ā ∈ Q)`` for one answer tuple, via the shared manager."""
        expr = lineage_of(
            self.formula,
            self.possible,
            domain=self.base_domain.union(answer),
            assignment=dict(zip(variables, answer)),
            index=self.index,
        )
        root = self.manager.build(expr)
        if isinstance(self.pdb, TupleIndependentTable):
            return self.manager.probability(
                root, self.pdb.marginal, self._score_cache)
        return bid_bdd_probability(
            self.manager, root, self.pdb, self._score_cache)

    def answer_support(
        self,
        variables: Tuple[Variable, ...],
        candidates: Iterable[Value],
    ) -> Optional[list]:
        """Candidate answer tuples with possibly-non-⊥ lineage, derived
        from the join results of one set-at-a-time grounding run —
        instead of enumerating the full ``candidates^arity`` product.

        Returns the tuples in the exact order the product enumeration
        would visit them, or None when the formula is outside the
        engine's fragment (callers then stream the full product).  The
        support is a *superset* of the true non-zero answers (the engine
        runs over the union of every per-answer quantifier domain, and
        positive-existential grounding is monotone in the domain), so
        pruning never drops an answer; answer variables the formula
        never constrains are padded with every candidate.
        """
        from repro.logic.ground import (
            GroundingEngine,
            supports_set_at_a_time,
        )

        candidates = list(candidates)
        if not variables or not candidates:
            return None
        if not supports_set_at_a_time(self.formula):
            return None
        if not free_variables(self.formula) <= set(variables):
            return None
        domain = self.base_domain.union(candidates)
        if not domain:
            return None
        engine = GroundingEngine(self.index, frozenset(domain))
        rows = engine.relation(self.formula)
        if engine.probes:
            obs.incr("grounding.probes", engine.probes)
        if engine.joins:
            obs.incr("grounding.joins", engine.joins)
        candidate_set = set(candidates)
        total = len(candidates) ** len(variables)
        bound = [row for row in rows.rows
                 if all(value in candidate_set for value in row)]
        missing = len(variables) - len(rows.vars)
        if len(bound) * len(candidates) ** missing >= total:
            return None  # nothing to prune; stream the product instead
        # Expand to full answer tuples: formula-bound positions from the
        # join rows, unconstrained answer variables over all candidates.
        position = {var: i for i, var in enumerate(rows.vars)}
        answers = []
        for row in bound:
            partial = [(var, row[position[var]])
                       for var in variables if var in position]
            combos = [dict(partial)]
            for var in variables:
                if var in position:
                    continue
                combos = [
                    dict(combo, **{var: value})
                    for combo in combos for value in candidates
                ]
            answers.extend(
                tuple(combo[var] for var in variables) for combo in combos)
        order = {value: i for i, value in enumerate(candidates)}
        answers = sorted(
            set(answers), key=lambda t: tuple(order[v] for v in t))
        obs.incr("grounding.pruned_answers", total - len(answers))
        return answers

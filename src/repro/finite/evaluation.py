"""Query evaluation on finite PDBs by possible-world enumeration, plus
the strategy dispatcher.

``query_probability`` is the evaluator Proposition 6.1's algorithm calls
on truncations: it picks the cheapest applicable exact strategy (lifted
safe plan → lineage/Shannon → world enumeration).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.errors import EvaluationError, UnsafeQueryError
from repro.finite.bid import BlockIndependentTable
from repro.finite.lineage_eval import query_probability_by_lineage
from repro.finite.lifted import query_probability_lifted
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.analysis import constants_of, free_variables
from repro.logic.queries import BooleanQuery, Query
from repro.logic.normalform import substitute
from repro.logic.semantics import evaluate
from repro.logic.syntax import Formula
from repro.relational.facts import Value
from repro.relational.instance import Instance

PDBLike = Union[FinitePDB, TupleIndependentTable, BlockIndependentTable]

#: Defaults for the ``"sampled"`` strategy: enough worlds for a ~±0.01
#: normal-approximation half-width, seeded so repeated runs agree.
SAMPLED_STRATEGY_SAMPLES = 20_000
SAMPLED_STRATEGY_SEED = 0


def _as_finite_pdb(pdb: PDBLike) -> FinitePDB:
    if isinstance(pdb, FinitePDB):
        return pdb
    return pdb.expand()


def query_probability_by_worlds(query: BooleanQuery, pdb: PDBLike) -> float:
    """``P(Q) = Σ_{D ⊨ Q} P({D})`` — exhaustive ground truth.

    Exponential in the number of facts for TI/BID inputs (they are
    expanded to explicit worlds first).

    >>> from repro.relational import Schema, Instance
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> round(query_probability_by_worlds(q, table), 10)
    0.75
    """
    finite = _as_finite_pdb(pdb)
    return finite.probability(query.holds_in)


def query_probability(
    query: BooleanQuery,
    pdb: PDBLike,
    strategy: str = "auto",
) -> float:
    """Exact probability of a Boolean query on a finite PDB.

    ``strategy``:

    * ``"auto"`` — lifted safe plan if the query compiles to one and the
      PDB is tuple-independent, else lineage, else world enumeration.
    * ``"worlds"`` / ``"lineage"`` / ``"lifted"`` — force one strategy.
    * ``"sampled"`` — seeded batched Monte Carlo on the
      :mod:`repro.sampling` kernels (:data:`SAMPLED_STRATEGY_SAMPLES`
      worlds): the only non-exact strategy, for queries whose exact
      evaluation is out of reach on large truncations.

    The exact strategies agree exactly; the E8 benchmark measures their
    costs.
    """
    if strategy == "sampled":
        from repro.finite.montecarlo import query_probability_monte_carlo

        return query_probability_monte_carlo(
            query, pdb, SAMPLED_STRATEGY_SAMPLES,
            seed=SAMPLED_STRATEGY_SEED, backend="auto",
        ).estimate
    if strategy == "worlds":
        return query_probability_by_worlds(query, pdb)
    if strategy == "lineage":
        return query_probability_by_lineage(query, pdb)
    if strategy == "lifted":
        if not isinstance(pdb, TupleIndependentTable):
            raise EvaluationError("lifted evaluation needs a TI table")
        return query_probability_lifted(query, pdb)
    if strategy != "auto":
        raise EvaluationError(f"unknown strategy {strategy!r}")
    if isinstance(pdb, TupleIndependentTable):
        try:
            return query_probability_lifted(query, pdb)
        except UnsafeQueryError:
            pass
    if isinstance(pdb, (TupleIndependentTable, BlockIndependentTable)):
        return query_probability_by_lineage(query, pdb)
    return query_probability_by_worlds(query, pdb)


def marginal_answer_probabilities(
    query: Query,
    pdb: PDBLike,
    domain: Optional[Iterable[Value]] = None,
    strategy: str = "auto",
) -> Dict[Tuple[Value, ...], float]:
    """Per-tuple marginals ``Pr(ā ∈ Q(D))`` for a non-Boolean query
    (paper §3.1 relaxed semantics; §6 extension of Prop. 6.1).

    Candidate tuples are built from the PDB's active domain plus the
    query's constants (Fact 2.1), or from an explicit ``domain``.
    Tuples with probability 0 are omitted.
    """
    if query.is_boolean:
        boolean = BooleanQuery(query.formula, query.schema, name=query.name)
        return {(): query_probability(boolean, pdb, strategy=strategy)}
    if domain is None:
        values = set(constants_of(query.formula))
        if isinstance(pdb, FinitePDB):
            for instance in pdb.instances():
                values |= instance.active_domain()
        else:
            for fact in pdb.facts():
                values.update(fact.args)
        candidates = sorted(values, key=repr)
    else:
        candidates = sorted(set(domain), key=repr)
    results: Dict[Tuple[Value, ...], float] = {}
    assignments = [()]
    for _ in query.variables:
        assignments = [a + (v,) for a in assignments for v in candidates]
    for answer in assignments:
        binding = dict(zip(query.variables, answer))
        grounded = substitute(query.formula, binding)
        boolean = BooleanQuery(grounded, query.schema, name=f"{query.name}{answer}")
        probability = query_probability(boolean, pdb, strategy=strategy)
        if probability > 0:
            results[answer] = probability
    return results

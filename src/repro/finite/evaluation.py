"""Query evaluation on finite PDBs by possible-world enumeration, plus
the strategy dispatcher.

``query_probability`` is the evaluator Proposition 6.1's algorithm calls
on truncations: it picks the cheapest applicable exact strategy (lifted
safe plan → compiled ROBDD past a size threshold → lineage/Shannon →
world enumeration).
"""

from __future__ import annotations

import itertools
import pickle
import traceback
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.errors import EvaluationError, UnsafeQueryError
from repro.parallel.pool import ShardError
from repro.finite.bid import BlockIndependentTable
from repro.finite.lineage_eval import query_probability_by_lineage
from repro.finite.lifted import query_probability_lifted
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.analysis import constants_of, free_variables
from repro.logic.queries import BooleanQuery, Query
from repro.logic.normalform import substitute
from repro.logic.semantics import evaluate
from repro.logic.syntax import Formula
from repro.relational.facts import Value, domain_sort_key
from repro.relational.instance import Instance

PDBLike = Union[FinitePDB, TupleIndependentTable, BlockIndependentTable]

#: Defaults for the ``"sampled"`` strategy: enough worlds for a ~±0.01
#: normal-approximation half-width, seeded so repeated runs agree.
SAMPLED_STRATEGY_SAMPLES = 20_000
SAMPLED_STRATEGY_SEED = 0

#: ``"auto"`` prefers the compile-once ROBDD path over raw Shannon
#: expansion for unsafe queries on TI tables at least this many facts —
#: below it, compilation overhead rivals the expansion itself (see
#: ``benchmarks/bench_compiled_eval.py``).
BDD_AUTO_THRESHOLD = 12


def _as_finite_pdb(pdb: PDBLike) -> FinitePDB:
    if isinstance(pdb, FinitePDB):
        return pdb
    return pdb.expand()


def query_probability_by_worlds(query: BooleanQuery, pdb: PDBLike) -> float:
    """``P(Q) = Σ_{D ⊨ Q} P({D})`` — exhaustive ground truth.

    Exponential in the number of facts for TI/BID inputs (they are
    expanded to explicit worlds first).

    >>> from repro.relational import Schema, Instance
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> round(query_probability_by_worlds(q, table), 10)
    0.75
    """
    finite = _as_finite_pdb(pdb)
    return finite.probability(query.holds_in)


def query_probability(
    query: BooleanQuery,
    pdb: PDBLike,
    strategy: str = "auto",
    compile_cache=None,
    lifted_executor: str = "auto",
) -> float:
    """Exact probability of a Boolean query on a finite PDB.

    ``strategy``:

    * ``"auto"`` — lifted safe-plan evaluation for TI and BID tables:
      safe (sub)queries run extensionally, and unsafe residue components
      of a *partial* plan are delegated per-component to the intensional
      engines (compiled ROBDD past :data:`BDD_AUTO_THRESHOLD` facts,
      lineage/Shannon below it) — each delegation counted in
      ``lifted.unsafe_fallbacks``.  A query with no safe component at
      all routes wholly intensionally; explicit PDBs enumerate worlds.
    * ``"worlds"`` / ``"lineage"`` / ``"lifted"`` — force one strategy
      (``"lifted"`` raises :class:`~repro.errors.UnsafeQueryError`,
      carrying the offending subquery, when no strict safe plan exists).
    * ``"bdd"`` — compile the lineage once into a cached ROBDD
      (:mod:`repro.finite.compile_cache`) and score it by one linear
      weighted-model-counting pass; repeated calls on the same query
      (ε-sweeps, growing truncations) reuse and extend the diagram.
    * ``"sampled"`` — seeded batched Monte Carlo on the
      :mod:`repro.sampling` kernels (:data:`SAMPLED_STRATEGY_SAMPLES`
      worlds): the only non-exact strategy, for queries whose exact
      evaluation is out of reach on large truncations.

    The exact strategies agree exactly; the E8 benchmark measures their
    costs.

    ``compile_cache`` overrides the process-wide
    :data:`~repro.finite.compile_cache.DEFAULT_COMPILE_CACHE` for the
    compiled (``"bdd"``) path — refinement sessions pass their own so
    warm diagrams stay bound to the session.

    ``lifted_executor`` picks the safe-plan interpreter for the
    ``"lifted"`` (and ``"auto"``) strategies: ``"auto"`` runs the
    batched set-at-a-time executor on TI tables and the scalar one on
    BID tables, ``"scalar"`` forces the candidate-at-a-time
    interpreter, ``"batched"`` forces the grouped pipeline (BID tables
    still fall back to scalar, counted in
    ``lifted.scalar_fallbacks``).

    The returned value is a plain ``float`` carrying an
    :class:`~repro.obs.EvalReport` as ``.report`` — the strategy that
    actually fired, compile-cache and sampling telemetry, and per-phase
    timings.
    """
    with obs.trace() as t:
        with obs.phase("evaluate"):
            value, resolved = _dispatch_query_probability(
                query, pdb, strategy, compile_cache, lifted_executor)
        obs.note(strategy=resolved)
        report = obs.EvalReport.from_trace(t)
    return obs.attach_report(value, report)


def _dispatch_query_probability(
    query: BooleanQuery,
    pdb: PDBLike,
    strategy: str,
    compile_cache=None,
    lifted_executor: str = "auto",
) -> Tuple[float, str]:
    """Evaluate and return ``(value, resolved strategy name)`` — the
    concrete engine ``"auto"`` settled on, for the report."""
    if strategy == "sampled":
        from repro.finite.montecarlo import query_probability_monte_carlo

        estimate = query_probability_monte_carlo(
            query, pdb, SAMPLED_STRATEGY_SAMPLES,
            seed=SAMPLED_STRATEGY_SEED, backend="auto",
        )
        return estimate.estimate, "sampled"
    if strategy == "worlds":
        return query_probability_by_worlds(query, pdb), "worlds"
    if strategy == "lineage":
        return query_probability_by_lineage(query, pdb), "lineage"
    if strategy == "bdd":
        if isinstance(pdb, FinitePDB):
            # Explicit worlds carry correlations lineage cannot factor.
            return query_probability_by_worlds(query, pdb), "worlds"
        from repro.finite.compile_cache import query_probability_by_bdd_cached

        return query_probability_by_bdd_cached(query, pdb, compile_cache), "bdd"
    if strategy == "lifted":
        if not isinstance(
            pdb, (TupleIndependentTable, BlockIndependentTable)
        ):
            raise EvaluationError("lifted evaluation needs a TI or BID table")
        return (
            query_probability_lifted(
                query, pdb, plan_cache=compile_cache,
                executor=lifted_executor),
            "lifted",
        )
    if strategy != "auto":
        raise EvaluationError(f"unknown strategy {strategy!r}")
    if isinstance(pdb, (TupleIndependentTable, BlockIndependentTable)):
        fact_count = (
            len(pdb) if isinstance(pdb, TupleIndependentTable)
            else len(pdb.facts())
        )
        residue_strategy = (
            "bdd" if fact_count >= BDD_AUTO_THRESHOLD else "lineage"
        )

        def unsafe_residue(formula: Formula) -> float:
            """Evaluate one unsafe residue component of a partial plan
            intensionally (counted, so hybrid evaluations are visible in
            the report)."""
            obs.incr("lifted.unsafe_fallbacks")
            obs.event(
                "lifted.unsafe_fallback",
                strategy=residue_strategy,
                formula=str(formula)[:160],
            )
            residue = BooleanQuery(
                formula, query.schema, name=f"{query.name}#residue")
            value, _ = _dispatch_query_probability(
                residue, pdb, residue_strategy, compile_cache)
            return value

        try:
            value = query_probability_lifted(
                query, pdb, plan_cache=compile_cache,
                partial=True, unsafe_fallback=unsafe_residue,
                executor=lifted_executor,
            )
            return value, "lifted"
        except UnsafeQueryError as exc:
            # No safe component at all (or the table's block structure
            # defeats the plan): route the whole query intensionally.
            obs.incr("lifted.unsafe_fallbacks")
            obs.event(
                "lifted.unsafe_fallback",
                strategy=residue_strategy,
                reason=str(exc)[:160],
            )
        return _dispatch_query_probability(
            query, pdb, residue_strategy, compile_cache)
    return query_probability_by_worlds(query, pdb), "worlds"


# --------------------------------------------------------------- fan-out
def _candidate_values(
    query: Query,
    pdb: PDBLike,
    domain: Optional[Iterable[Value]],
) -> List[Value]:
    """Candidate answer values: the PDB's active domain plus the query's
    constants (Fact 2.1), or an explicit ``domain``."""
    if domain is not None:
        return sorted(set(domain), key=domain_sort_key)
    values = set(constants_of(query.formula))
    if isinstance(pdb, FinitePDB):
        for instance in pdb.instances():
            values |= instance.active_domain()
    else:
        for fact in pdb.facts():
            values.update(fact.args)
    return sorted(values, key=domain_sort_key)


def _iter_answers(
    candidates: List[Value],
    arity: int,
    offset: int = 0,
    stride: int = 1,
) -> Iterator[Tuple[Value, ...]]:
    """Lazily enumerate ``candidates^arity`` (optionally a strided slice
    for process-pool sharding) — never materialized up front."""
    product = itertools.product(candidates, repeat=arity)
    if offset or stride != 1:
        return itertools.islice(product, offset, None, stride)
    return product


def _grounding_is_safe(query: Query, candidates: List[Value]) -> bool:
    """Whether grounded instances of ``query`` admit a lifted safe plan.

    Grounding substitutes constants uniformly, so safety is the same for
    every answer tuple — probe once with a representative binding.  The
    representative values must be *pairwise distinct*: repeating one
    value collapses distinct answer variables into the same constant,
    which can merge atoms (``R(x,z) ∧ R(y,z)`` → one atom) and misjudge
    an unsafe query as safe.  When there are fewer distinct candidates
    than variables the pool is padded with synthetic probe values —
    safety only depends on the substitution's shape, not its values.
    """
    if not candidates:
        return False
    from repro.logic.hierarchy import safe_plan_ucq
    from repro.logic.normalform import extract_ucq

    pool: List[Value] = list(dict.fromkeys(candidates))
    while len(pool) < len(query.variables):
        pool.append(("__probe__", len(pool)))
    binding = {v: pool[i] for i, v in enumerate(query.variables)}
    grounded = substitute(query.formula, binding)
    ucq = extract_ucq(grounded)
    if ucq is None:
        return False
    try:
        safe_plan_ucq(ucq)
        return True
    except UnsafeQueryError:
        return False


def _shared_grounding(query: Query, pdb: PDBLike):
    """A :class:`~repro.finite.compile_cache.SharedGrounding` covering
    the whole fan-out.  The base quantifier domain is the active domain
    plus the formula's constants; each answer tuple contributes its own
    values on top — identical to what per-answer grounding would use."""
    from repro.finite.compile_cache import SharedGrounding

    base = set(constants_of(query.formula))
    for fact in pdb.facts():
        base.update(fact.args)
    return SharedGrounding(query.formula, pdb, base)


def _evaluate_answers(
    query: Query,
    pdb: PDBLike,
    candidates: List[Value],
    strategy: str,
    grounding_factory=None,
    offset: int = 0,
    stride: int = 1,
) -> Dict[Tuple[Value, ...], float]:
    """Evaluate ``Pr(ā ∈ Q)`` over the candidate answer tuples —
    ``offset``/``stride`` select one process-pool shard of them.

    For the compiled strategies ("bdd" always; "auto" on TI/BID tables
    whose grounded instances have no safe plan) every answer shares one
    lineage/BDD context: one hash-consed node store and one scoring memo
    serve the whole fan-out instead of recompiling per answer.  On that
    path the candidate tuples come from the grounding engine's join
    results (:meth:`SharedGrounding.answer_support`) rather than the
    full ``candidates^arity`` product — pruning is counted in the
    ``grounding.pruned_answers`` trace counter, never silent, and falls
    back to the full product when the formula is outside the engine's
    fragment.  ``grounding_factory`` overrides how the shared context is
    built — a refinement session passes one that warm-starts from the
    previous truncation's grounding.
    """
    shared = None
    if isinstance(pdb, (TupleIndependentTable, BlockIndependentTable)):
        factory = grounding_factory or (
            lambda: _shared_grounding(query, pdb))
        if strategy == "bdd":
            shared = factory()
        elif strategy == "auto" and (
            isinstance(pdb, BlockIndependentTable)
            or not _grounding_is_safe(query, candidates)
        ):
            # No per-answer safe plan (BID fan-outs share one compile
            # rather than gambling on per-answer block disjointness):
            # compile once, restrict per answer.
            shared = factory()
    answers: Optional[Iterable[Tuple[Value, ...]]] = None
    if shared is not None:
        support = shared.answer_support(query.variables, candidates)
        if support is not None:
            # Sharding a deterministic support list partitions it just
            # as sharding the product enumeration would.
            answers = support[offset::stride] if stride != 1 else support
    if answers is None:
        answers = _iter_answers(candidates, query.arity, offset, stride)
    results: Dict[Tuple[Value, ...], float] = {}
    for answer in answers:
        obs.incr("fanout.answers")
        if shared is not None:
            probability = shared.answer_probability(query.variables, answer)
        else:
            binding = dict(zip(query.variables, answer))
            grounded = substitute(query.formula, binding)
            boolean = BooleanQuery(
                grounded, query.schema, name=f"{query.name}{answer}")
            probability = query_probability(boolean, pdb, strategy=strategy)
        if probability > 0:
            results[answer] = probability
    return results


def _answer_chunk_worker(payload):
    """Legacy per-call process-pool entry point: evaluate one strided
    shard of the answer space.  Module-level (picklable); each worker
    builds its own shared grounding, so diagrams never cross process
    boundaries.  The live fan-out path runs on the persistent
    :mod:`repro.parallel` shard pool instead; this worker (and
    :func:`_pooled_answer_shards`) remain as the cold-executor baseline
    of ``benchmarks/bench_fanout.py``.

    Returns ``("ok", shard_dict)`` or ``("error", exception,
    formatted_traceback)`` — exceptions travel back explicitly so the
    parent can re-raise them with the worker-side traceback attached.
    """
    (formula, schema, variables, name, pdb, candidates, offset, stride,
     strategy) = payload
    try:
        query = Query(formula, schema, variables=variables, name=name)
        shard = _evaluate_answers(
            query, pdb, candidates, strategy, offset=offset, stride=stride)
        return ("ok", dict(shard))
    except Exception as exc:
        return ("error", exc, traceback.format_exc())


def _pool_pickle_error(payload) -> Optional[str]:
    """Why ``payload`` cannot cross a (spawn) process boundary, or None.

    ``concurrent.futures`` pickles every payload regardless of start
    method; probing up front lets the fan-out degrade gracefully to the
    serial path instead of dying inside the pool machinery.
    """
    try:
        pickle.dumps(payload)
        return None
    except Exception as exc:  # PicklingError, TypeError, AttributeError, …
        return f"{type(exc).__name__}: {exc}"


def _pooled_answer_shards(
    payloads: List[tuple],
    workers: int,
) -> List[Dict[Tuple[Value, ...], float]]:
    """Run the shard payloads on a process pool.

    Shard exceptions are re-raised in the parent with the worker's
    original traceback attached (as a :class:`ShardError` cause);
    ``KeyboardInterrupt`` cancels outstanding shards and shuts the pool
    down without waiting for them.
    """
    from concurrent.futures import ProcessPoolExecutor

    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [
            pool.submit(_answer_chunk_worker, payload) for payload in payloads
        ]
        shards = []
        for future in futures:
            outcome = future.result()
            if outcome[0] == "error":
                _, exc, remote_traceback = outcome
                raise exc from ShardError(
                    "answer-marginal shard failed in worker process; "
                    f"original traceback:\n{remote_traceback}"
                )
            shards.append(outcome[1])
        pool.shutdown(wait=True)
        return shards
    except KeyboardInterrupt:
        # Don't block on still-running shards after Ctrl-C: cancel what
        # hasn't started and let the executor reap workers on exit.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    except BaseException:
        pool.shutdown(wait=True, cancel_futures=True)
        raise


def marginal_answer_probabilities(
    query: Query,
    pdb: PDBLike,
    domain: Optional[Iterable[Value]] = None,
    strategy: str = "auto",
    workers: Optional[int] = None,
    grounding_factory=None,
    pool=None,
    schedule: str = "dynamic",
) -> Dict[Tuple[Value, ...], float]:
    """Per-tuple marginals ``Pr(ā ∈ Q(D))`` for a non-Boolean query
    (paper §3.1 relaxed semantics; §6 extension of Prop. 6.1).

    Candidate tuples are built from the PDB's active domain plus the
    query's constants (Fact 2.1), or from an explicit ``domain``; the
    candidate tuple space is streamed, never materialized.  Tuples with
    probability 0 are omitted.

    Answers share one compiled lineage/BDD whenever the strategy
    compiles (``"bdd"``, or ``"auto"`` without a safe plan).  Pass
    ``workers=k > 1`` to fan the answer tuples out over the persistent
    :mod:`repro.parallel` shard pool — sound because distinct answer
    tuples are scored independently.  The pool is process-wide and
    *warm*: workers survive across calls, cache the table (repeat calls
    on a grown truncation ship only the appended delta), and keep their
    own shared diagrams, which extend across sweep steps exactly like
    the parent's.  The answer space is streamed to idle workers in
    latency-adaptive chunks (``schedule="dynamic"``; ``"static"`` keeps
    the legacy one-strided-shard-per-worker split).  Pass ``pool=`` (a
    :class:`~repro.parallel.pool.ShardPool`) to pin the call to a
    specific pool — refinement sessions and the serve layer share one
    across all their calls.

    A shard exception is re-raised here with the worker's original
    traceback attached (as a
    :class:`~repro.parallel.pool.ShardError` cause); payloads that
    cannot be pickled degrade to the serial path with a
    ``fanout.serial_fallback`` trace event instead of failing inside
    the pool.

    ``grounding_factory`` (serial path only — pool workers hold their
    own warm groundings) overrides how the shared compilation context
    is built; refinement sessions pass one that carries the previous
    truncation's manager and scoring memo forward.

    The returned dict carries an :class:`~repro.obs.EvalReport` as
    ``.report``.
    """
    with obs.trace() as t:
        results = _marginal_answer_probabilities_traced(
            query, pdb, domain, strategy, workers, grounding_factory,
            pool, schedule)
        report = obs.EvalReport.from_trace(t)
    return obs.attach_report(results, report)


def _pooled_answer_marginals(
    query: Query,
    pdb: PDBLike,
    candidates: List[Value],
    strategy: str,
    workers: Optional[int],
    domain: Optional[Iterable[Value]],
    pool,
    schedule: str,
) -> Optional[Dict[Tuple[Value, ...], float]]:
    """Run the fan-out on the persistent shard pool; None means the
    pool cannot take this payload and the caller should run serially
    (the ``fanout.serial_fallback`` event is already emitted)."""
    from repro.parallel.pool import PoolUnavailableError, get_shared_pool
    from repro.parallel.shipping import ShipError, pooled_answer_marginals

    count = (
        workers if workers is not None
        else (pool.workers if pool is not None else 1)
    )
    try:
        if pool is None:
            pool = get_shared_pool(count)
        obs.note(strategy=strategy)
        with obs.phase("fanout"):
            return pooled_answer_marginals(
                pool, query, pdb, candidates, strategy,
                domain=domain, schedule=schedule,
            )
    except (ShipError, PoolUnavailableError) as exc:
        # Infrastructure failures (unpicklable table, dead pool) degrade
        # gracefully; genuine evaluation errors propagate above.
        obs.event(
            "fanout.serial_fallback", workers=count, reason=str(exc))
        return None


def _marginal_answer_probabilities_traced(
    query: Query,
    pdb: PDBLike,
    domain: Optional[Iterable[Value]],
    strategy: str,
    workers: Optional[int],
    grounding_factory=None,
    pool=None,
    schedule: str = "dynamic",
) -> Dict[Tuple[Value, ...], float]:
    if query.is_boolean:
        boolean = BooleanQuery(query.formula, query.schema, name=query.name)
        return {(): float(query_probability(boolean, pdb, strategy=strategy))}
    candidates = _candidate_values(query, pdb, domain)
    if not candidates:
        return {}
    if pool is not None or (workers is not None and workers > 1):
        results = _pooled_answer_marginals(
            query, pdb, candidates, strategy, workers, domain,
            pool, schedule)
        if results is not None:
            return results
    obs.note(strategy=strategy)
    with obs.phase("fanout"):
        return _evaluate_answers(
            query, pdb, candidates, strategy, grounding_factory)

"""Exact query evaluation via lineage and Shannon expansion.

The lineage of a Boolean query over a finite TI table is a Boolean
function of independent fact variables; its probability is computed by
recursive Shannon expansion

    P(λ) = p_f · P(λ[f ↦ 1]) + (1 − p_f) · P(λ[f ↦ 0])

with memoization on (syntactically normalized) sub-lineages — a
formula-driven BDD.  Worst case exponential (#P-hardness is real:
non-hierarchical queries like H₀ trigger it), but far cheaper than world
enumeration on typical inputs, and exact.

For BID tables the expansion branches over *blocks* (each alternative
plus ⊥), which accounts for the within-block disjointness.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Union

from repro.errors import EvaluationError
from repro.finite.bid import BlockIndependentTable
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.lineage import Lineage, lineage_of
from repro.logic.queries import BooleanQuery
from repro.relational.facts import Fact


def lineage_probability(
    lineage: Lineage,
    marginal: Callable[[Fact], float],
) -> float:
    """Probability of a lineage under independent fact marginals.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
    >>> round(lineage_probability(expr, lambda f: 0.5), 10)
    0.75
    """
    cache: Dict[tuple, float] = {}
    pivot = _make_pivot(lineage)

    def recurse(expr: Lineage) -> float:
        constant = expr.is_constant()
        if constant is not None:
            return 1.0 if constant else 0.0
        key = expr.node
        cached = cache.get(key)
        if cached is not None:
            return cached
        fact = pivot(expr)
        p = marginal(fact)
        high = recurse(expr.condition(fact, True))
        low = recurse(expr.condition(fact, False))
        value = p * high + (1.0 - p) * low
        cache[key] = value
        return value

    return recurse(lineage)


def _make_pivot(root: Lineage) -> Callable[[Lineage], Fact]:
    """Build the pivot chooser for one expansion.

    The old per-call ``_pivot`` re-walked the whole lineage tree at every
    recursion step (O(size) per node, O(size²) per expansion).  Instead,
    occurrence counts are taken *once* on the root, and the facts present
    in each sub-lineage are maintained in a memo keyed by (shared,
    hash-consed) node tuples, so conditioned expressions reuse the fact
    sets of every untouched subtree.
    """
    counts: Dict[Fact, int] = {}
    stack = [root.node]
    while stack:
        node = stack.pop()
        tag = node[0]
        if tag == "var":
            counts[node[1]] = counts.get(node[1], 0) + 1
        elif tag == "not":
            stack.append(node[1])
        elif tag in ("and", "or"):
            stack.extend(node[1])
    facts_memo: Dict[tuple, FrozenSet[Fact]] = {}

    def pivot(expr: Lineage) -> Fact:
        present = _facts_of(expr.node, facts_memo)
        if not present:
            raise EvaluationError("no variables in non-constant lineage")
        return max(present, key=lambda f: (counts.get(f, 0), f.sort_key()))

    return pivot


_NO_FACTS: FrozenSet[Fact] = frozenset()


def _facts_of(
    node: tuple, memo: Dict[tuple, FrozenSet[Fact]]
) -> FrozenSet[Fact]:
    """Facts mentioned in a lineage node, memoized across shared subtrees."""
    known = memo.get(node)
    if known is not None:
        return known
    stack = [node]
    while stack:
        current = stack[-1]
        if current in memo:
            stack.pop()
            continue
        tag = current[0]
        if tag == "var":
            memo[current] = frozenset((current[1],))
            stack.pop()
        elif tag in ("true", "false"):
            memo[current] = _NO_FACTS
            stack.pop()
        elif tag == "not":
            child = memo.get(current[1])
            if child is not None:
                memo[current] = child
                stack.pop()
            else:
                stack.append(current[1])
        else:  # and / or
            pending = [c for c in current[1] if c not in memo]
            if pending:
                stack.extend(pending)
            else:
                memo[current] = frozenset().union(
                    *(memo[c] for c in current[1]))
                stack.pop()
    return memo[node]


def _bid_lineage_probability(
    lineage: Lineage,
    table: BlockIndependentTable,
) -> float:
    """Shannon expansion over blocks: branch on each alternative of the
    block of the pivot fact (all alternatives plus ⊥), conditioning the
    lineage on the chosen fact being present and its block-mates absent.
    """
    cache: Dict[tuple, float] = {}
    pivot = _make_pivot(lineage)

    def recurse(expr: Lineage) -> float:
        constant = expr.is_constant()
        if constant is not None:
            return 1.0 if constant else 0.0
        key = expr.node
        cached = cache.get(key)
        if cached is not None:
            return cached
        pivot_fact = pivot(expr)
        block = table.block_of(pivot_fact)
        if block is None:
            # Fact impossible: it is simply absent.
            value = recurse(expr.condition(pivot_fact, False))
            cache[key] = value
            return value
        block_facts = block.facts()
        total = 0.0
        # Branch: exactly `chosen` from the block is present (or none).
        for chosen in block_facts + [None]:
            probability = block.probability(chosen)
            if probability == 0.0:
                continue
            conditioned = expr.condition_many(
                {fact: fact == chosen for fact in block_facts})
            total += probability * recurse(conditioned)
        cache[key] = total
        return total

    return recurse(lineage)


def query_probability_by_lineage(
    query: BooleanQuery,
    pdb: Union[TupleIndependentTable, BlockIndependentTable, FinitePDB],
) -> float:
    """Exact ``P(Q)`` via lineage construction + Shannon expansion.

    Grounding goes through :func:`repro.logic.lineage.lineage_of`, so
    positive-existential queries use the set-at-a-time join engine
    (:mod:`repro.logic.ground`) instead of assignment enumeration.

    Falls back to world enumeration for explicit :class:`FinitePDB`
    inputs (they carry arbitrary correlations lineage cannot factor).

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> round(query_probability_by_lineage(q, table), 10)
    0.75
    """
    if isinstance(pdb, FinitePDB):
        return pdb.probability(query.holds_in)
    possible = set(pdb.facts())
    expr = lineage_of(query.formula, possible)
    if isinstance(pdb, TupleIndependentTable):
        return lineage_probability(expr, pdb.marginal)
    return _bid_lineage_probability(expr, pdb)

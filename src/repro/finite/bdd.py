"""Reduced ordered binary decision diagrams (ROBDDs) over fact variables.

The Shannon-expansion evaluator (:mod:`repro.finite.lineage_eval`)
re-normalizes the lineage tree at every conditioning step; compiling the
lineage *once* into an ROBDD makes subsequent operations linear in the
diagram size:

* exact probability under independent fact marginals (one bottom-up
  pass — weighted model counting);
* conditioning on facts (restrict);
* model counting and enumeration.

Nodes are hash-consed: structurally equal subdiagrams are shared, and
the reduction rules (no redundant tests, no duplicate nodes) hold by
construction, so ROBDD equality is pointer equality per manager.
Variable order follows the canonical fact order by default, or a
caller-supplied order (the classic lever benchmarked in A-3).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import EvaluationError
from repro.logic.lineage import Lineage
from repro.relational.facts import Fact
from repro.utils.probability import numpy_or_none

#: Reachable-node count above which :meth:`BDDManager.rescore` switches
#: to the per-level vectorized pass (numpy available only).
_VECTOR_RESCORE_MIN_NODES = 128
#: Linearizations kept per manager (LRU by root id).
_LINEAR_CACHE_SIZE = 16


class BDDNode:
    """An internal node: test ``fact``, branch to ``low`` / ``high``.

    Terminals are the integers 0 and 1 (shared across managers).
    """

    __slots__ = ("fact", "low", "high", "id")

    def __init__(self, fact: Fact, low, high, node_id: int):
        self.fact = fact
        self.low = low
        self.high = high
        self.id = node_id

    def __repr__(self) -> str:
        return f"BDDNode({self.fact}, id={self.id})"


#: Terminal nodes.
ZERO = 0
ONE = 1

BDDRef = object  # BDDNode | int


class BDDManager:
    """Hash-consing manager for ROBDDs over a fixed variable order.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> manager = BDDManager([R(1), R(2)])
    >>> node = manager.disjoin(manager.variable(R(1)),
    ...                        manager.variable(R(2)))
    >>> manager.probability(node, lambda f: 0.5)
    0.75
    """

    def __init__(self, order: Sequence[Fact]):
        order = list(order)
        if len(set(order)) != len(order):
            raise EvaluationError("variable order contains duplicates")
        self._level: Dict[Fact, int] = {f: i for i, f in enumerate(order)}
        self.order: List[Fact] = order
        self._unique: Dict[Tuple[int, int, int], BDDNode] = {}
        self._apply_cache: Dict[Tuple[str, int, int], BDDRef] = {}
        self._next_id = 2  # 0 and 1 are terminals
        #: LRU of linearized cones for :meth:`rescore`, keyed by root
        #: id — sound forever because nodes (and their cones) are
        #: immutable once hash-consed.
        self._linear_cache: "OrderedDict[int, tuple]" = OrderedDict()
        #: Serializes structural mutation (node creation, order
        #: extension) and the linearization LRU.  Re-entrant so public
        #: entry points may nest (``build`` → ``conjoin`` → ``make``).
        #: Reads of already-built diagrams never need it: nodes are
        #: immutable once hash-consed.
        self._lock = threading.RLock()

    # ----------------------------------------------------------------- basics
    def level(self, node: BDDRef) -> int:
        if isinstance(node, int):
            return len(self.order)  # terminals below all variables
        return self._level[node.fact]

    @staticmethod
    def _id(node: BDDRef) -> int:
        return node if isinstance(node, int) else node.id

    def make(self, fact: Fact, low: BDDRef, high: BDDRef) -> BDDRef:
        """Create (or reuse) a node, applying the reduction rules."""
        if self._id(low) == self._id(high):
            return low  # redundant test
        key = (self._level[fact], self._id(low), self._id(high))
        with self._lock:
            node = self._unique.get(key)
            if node is None:
                node = BDDNode(fact, low, high, self._next_id)
                self._next_id += 1
                self._unique[key] = node
        return node

    def variable(self, fact: Fact) -> BDDRef:
        if fact not in self._level:
            raise EvaluationError(f"{fact} not in the variable order")
        return self.make(fact, ZERO, ONE)

    def size(self) -> int:
        """Number of live internal nodes."""
        return len(self._unique)

    def extend_order(self, facts: Iterable[Fact]) -> int:
        """Append new facts *below* the existing variable order.

        Existing nodes keep their levels, so every previously compiled
        diagram (and the apply/unique caches backing it) stays valid —
        this is what lets a compilation cache *extend* a manager when a
        growing truncation Ω_n introduces fresh facts, instead of
        recompiling from scratch.  Returns the number of facts added.
        """
        added = 0
        with self._lock:
            for fact in facts:
                if fact not in self._level:
                    self._level[fact] = len(self.order)
                    self.order.append(fact)
                    added += 1
        return added

    def build(self, expr: Lineage) -> BDDRef:
        """Compile a lineage expression into this manager.

        Facts not yet in the variable order are appended first (see
        :meth:`extend_order`); structurally shared sub-expressions land
        on the same hash-consed nodes, and repeated builds reuse the
        manager's apply cache.
        """
        with self._lock:
            self.extend_order(sorted(expr.facts() - set(self.order)))
            return _build(self, expr.node)

    # ------------------------------------------------------------------ apply
    def _apply(self, op: str, combine, left: BDDRef, right: BDDRef) -> BDDRef:
        terminal = combine(left, right)
        if terminal is not None:
            return terminal
        key = (op, self._id(left), self._id(right))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        left_level, right_level = self.level(left), self.level(right)
        top = min(left_level, right_level)
        fact = self.order[top]
        left_low, left_high = (
            (left.low, left.high) if left_level == top else (left, left)
        )
        right_low, right_high = (
            (right.low, right.high) if right_level == top else (right, right)
        )
        result = self.make(
            fact,
            self._apply(op, combine, left_low, right_low),
            self._apply(op, combine, left_high, right_high),
        )
        self._apply_cache[key] = result
        return result

    def conjoin(self, left: BDDRef, right: BDDRef) -> BDDRef:
        def combine(a, b):
            if a == ZERO or b == ZERO:
                return ZERO
            if a == ONE:
                return b
            if b == ONE:
                return a
            if self._id(a) == self._id(b):
                return a
            return None

        with self._lock:
            return self._apply("and", combine, left, right)

    def disjoin(self, left: BDDRef, right: BDDRef) -> BDDRef:
        def combine(a, b):
            if a == ONE or b == ONE:
                return ONE
            if a == ZERO:
                return b
            if b == ZERO:
                return a
            if self._id(a) == self._id(b):
                return a
            return None

        with self._lock:
            return self._apply("or", combine, left, right)

    def negate(self, node: BDDRef) -> BDDRef:
        if node == ZERO:
            return ONE
        if node == ONE:
            return ZERO
        key = ("not", self._id(node), -1)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        with self._lock:
            result = self.make(
                node.fact, self.negate(node.low), self.negate(node.high))
            self._apply_cache[key] = result
        return result

    # --------------------------------------------------------------- queries
    def probability(
        self,
        node: BDDRef,
        marginal: Callable[[Fact], float],
        cache: Optional[Dict[int, float]] = None,
    ) -> float:
        """Weighted model count: one pass, memoized per node.

        Pass an external ``cache`` dict to share the memo across many
        roots in the same manager (e.g. the per-answer restrictions of a
        marginal fan-out) — valid as long as the marginals are fixed.
        """
        if cache is None:
            cache = {}

        def recurse(n: BDDRef) -> float:
            if n == ZERO:
                return 0.0
            if n == ONE:
                return 1.0
            cached = cache.get(n.id)
            if cached is not None:
                return cached
            p = marginal(n.fact)
            value = p * recurse(n.high) + (1.0 - p) * recurse(n.low)
            cache[n.id] = value
            return value

        return recurse(node)

    # ---------------------------------------------------- linearized rescore
    def _linearized(self, root: BDDNode) -> tuple:
        """The root's cone as parallel columns, topologically ordered.

        Node ids ascend children-first by construction (:meth:`make`
        allocates a parent only after both children exist), so sorting
        the reachable internal nodes by id *is* a topological order.
        Returns ``(facts, low_pos, high_pos, level_groups)`` where
        positions index the dense value vector (terminals at 0 and 1,
        node k of the order at k+2) and ``level_groups`` — present only
        with numpy — batches same-level node indices bottom-up for the
        elementwise pass.
        """
        # Copy-on-read: the LRU dict is only ever touched under the
        # manager lock, and the payload handed out is an immutable tuple
        # of freshly built columns — concurrent rescores may each build
        # the cone once (last writer wins) but never observe a
        # half-mutated cache entry.
        with self._lock:
            payload = self._linear_cache.get(root.id)
            if payload is not None:
                self._linear_cache.move_to_end(root.id)
                return payload
        seen = set()
        stack = [root]
        nodes: List[BDDNode] = []
        while stack:
            n = stack.pop()
            if isinstance(n, int) or n.id in seen:
                continue
            seen.add(n.id)
            nodes.append(n)
            stack.append(n.low)
            stack.append(n.high)
        nodes.sort(key=lambda n: n.id)
        position = {ZERO: 0, ONE: 1}
        for k, n in enumerate(nodes):
            position[n.id] = k + 2
        facts = [n.fact for n in nodes]
        low_pos = [position[self._id(n.low)] for n in nodes]
        high_pos = [position[self._id(n.high)] for n in nodes]
        level_groups = None
        np = numpy_or_none()
        if np is not None and len(nodes) >= _VECTOR_RESCORE_MIN_NODES:
            by_level: Dict[int, List[int]] = {}
            for k, n in enumerate(nodes):
                by_level.setdefault(self._level[n.fact], []).append(k)
            level_groups = [
                np.asarray(by_level[level], dtype=np.intp)
                for level in sorted(by_level, reverse=True)
            ]
        payload = (
            facts,
            low_pos,
            high_pos,
            level_groups,
        )
        with self._lock:
            self._linear_cache[root.id] = payload
            while len(self._linear_cache) > _LINEAR_CACHE_SIZE:
                self._linear_cache.popitem(last=False)
        return payload

    def rescore(
        self, node: BDDRef, marginal: Callable[[Fact], float]
    ) -> float:
        """Weighted model count over a cached linearization — the warm
        path of ε-sweeps, where one diagram is re-scored under growing
        truncations again and again.

        Bit-identical to :meth:`probability`: each node computes the
        same ``p·v_high + (1 − p)·v_low`` exactly once, just without the
        recursion (and, past ``_VECTOR_RESCORE_MIN_NODES`` nodes with
        numpy, as per-level elementwise kernels over the marginal
        slice).
        """
        if isinstance(node, int):
            return 1.0 if node == ONE else 0.0
        facts, low_pos, high_pos, level_groups = self._linearized(node)
        weights = [marginal(fact) for fact in facts]
        if level_groups is not None:
            np = numpy_or_none()
            from repro.relational.columns import COLUMNS_VECTOR_OPS

            obs.incr(COLUMNS_VECTOR_OPS)
            values = np.empty(len(facts) + 2, dtype=np.float64)
            values[0], values[1] = 0.0, 1.0
            p = np.asarray(weights, dtype=np.float64)
            low = np.asarray(low_pos, dtype=np.intp)
            high = np.asarray(high_pos, dtype=np.intp)
            for sel in level_groups:
                ps = p[sel]
                values[sel + 2] = (
                    ps * values[high[sel]] + (1.0 - ps) * values[low[sel]]
                )
            return float(values[-1])
        values = [0.0] * (len(facts) + 2)
        values[1] = 1.0
        for k, p in enumerate(weights):
            values[k + 2] = (
                p * values[high_pos[k]] + (1.0 - p) * values[low_pos[k]]
            )
        return values[-1]

    def restrict(self, node: BDDRef, fact: Fact, value: bool) -> BDDRef:
        """Condition on ``fact = value``."""
        if fact not in self._level:
            return node
        target = self._level[fact]
        cache: Dict[int, BDDRef] = {}

        def recurse(n: BDDRef) -> BDDRef:
            if isinstance(n, int) or self.level(n) > target:
                return n
            cached = cache.get(n.id)
            if cached is not None:
                return cached
            if self.level(n) == target:
                result = n.high if value else n.low
            else:
                result = self.make(n.fact, recurse(n.low), recurse(n.high))
            cache[n.id] = result
            return result

        with self._lock:
            return recurse(node)

    def evaluate(self, node: BDDRef, world) -> bool:
        """Truth value in a world (set of present facts)."""
        while not isinstance(node, int):
            node = node.high if node.fact in world else node.low
        return node == ONE

    def count_nodes(self, node: BDDRef) -> int:
        """Nodes reachable from ``node`` (diagram size)."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if isinstance(n, int) or n.id in seen:
                continue
            seen.add(n.id)
            stack.extend((n.low, n.high))
        return len(seen)

    def nodes_by_id(self) -> Dict[int, BDDRef]:
        """id → node map over every live node (terminals included) —
        the resolver snapshot/restore uses to re-attach saved root ids
        to this manager's hash-consed store."""
        mapping: Dict[int, BDDRef] = {ZERO: ZERO, ONE: ONE}
        for node in self._unique.values():
            mapping[node.id] = node
        return mapping

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Flatten the node store into id-sorted columns.

        Recursive pickling of ``BDDNode`` chains overflows the stack on
        deep diagrams; the flat form is linear and also drops the apply
        and linearization caches (pure derived state — rebuilt on
        demand), mirroring the columnar ``__getstate__`` discipline of
        the tables and :class:`~repro.relational.index.FactIndex`.
        """
        nodes = sorted(self._unique.values(), key=lambda n: n.id)
        return {
            "order": self.order,
            "nodes": [
                (n.id, n.fact, self._id(n.low), self._id(n.high))
                for n in nodes
            ],
            "next_id": self._next_id,
        }

    def __setstate__(self, state) -> None:
        self.order = state["order"]
        self._level = {fact: i for i, fact in enumerate(self.order)}
        self._unique = {}
        self._apply_cache = {}
        self._linear_cache = OrderedDict()
        self._lock = threading.RLock()
        self._next_id = state["next_id"]
        by_id: Dict[int, BDDRef] = {ZERO: ZERO, ONE: ONE}
        # Ids ascend children-first (``make`` allocates parents after
        # both children), so one pass in id order resolves every branch.
        for node_id, fact, low_id, high_id in state["nodes"]:
            node = BDDNode(fact, by_id[low_id], by_id[high_id], node_id)
            by_id[node_id] = node
            self._unique[(self._level[fact], low_id, high_id)] = node

    def satisfying_worlds(
        self, node: BDDRef, limit: int = 1000
    ) -> Iterator[frozenset]:
        """Enumerate satisfying worlds (facts NOT on the path are free;
        each yielded world is the minimal 'present' set of one full
        assignment — free variables are emitted in both states)."""
        order = self.order

        def recurse(n: BDDRef, index: int, present: frozenset):
            if n == ZERO:
                return
            if index == len(order):
                if n == ONE:
                    yield present
                return
            fact = order[index]
            if isinstance(n, int) or self.level(n) > index:
                yield from recurse(n, index + 1, present)
                yield from recurse(n, index + 1, present | {fact})
            else:
                yield from recurse(n.low, index + 1, present)
                yield from recurse(n.high, index + 1, present | {fact})

        for count, world in enumerate(recurse(node, 0, frozenset())):
            if count >= limit:
                return
            yield world


def compile_lineage(
    expr: Lineage,
    order: Optional[Sequence[Fact]] = None,
) -> Tuple[BDDManager, BDDRef]:
    """Compile a lineage expression into an ROBDD.

    Default order: canonical fact order over the expression's facts.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> expr = Lineage.conj([Lineage.var(R(1)),
    ...                      Lineage.negation(Lineage.var(R(2)))])
    >>> manager, root = compile_lineage(expr)
    >>> manager.probability(root, lambda f: 0.5)
    0.25
    """
    if order is None:
        order = sorted(expr.facts())
    manager = BDDManager(order)
    root = manager.build(expr)
    return manager, root


def _build(manager: BDDManager, node: tuple) -> BDDRef:
    tag = node[0]
    if tag == "true":
        return ONE
    if tag == "false":
        return ZERO
    if tag == "var":
        return manager.variable(node[1])
    if tag == "not":
        return manager.negate(_build(manager, node[1]))
    if tag == "and":
        result: BDDRef = ONE
        for child in node[1]:
            result = manager.conjoin(result, _build(manager, child))
            if result == ZERO:
                return ZERO
        return result
    if tag == "or":
        result = ZERO
        for child in node[1]:
            result = manager.disjoin(result, _build(manager, child))
            if result == ONE:
                return ONE
        return result
    raise EvaluationError(f"unknown lineage node {node!r}")


def query_probability_by_bdd(query, table) -> float:
    """Exact ``P(Q)`` by lineage → ROBDD → weighted model count.

    The lineage step uses the set-at-a-time grounding engine for
    positive-existential queries (see :func:`repro.logic.lineage.lineage_of`).

    >>> from repro.relational import Schema
    >>> from repro.finite.tuple_independent import TupleIndependentTable
    >>> from repro.logic import BooleanQuery, parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> round(query_probability_by_bdd(q, table), 10)
    0.75
    """
    from repro.logic.lineage import lineage_of

    expr = lineage_of(query.formula, set(table.marginals))
    manager, root = compile_lineage(expr)
    return manager.probability(root, table.marginal)

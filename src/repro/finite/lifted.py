"""Lifted (extensional) query evaluation via safe plans.

Evaluates safe Boolean UCQs in polynomial time on finite
tuple-independent and block-independent tables — the efficient
"traditional closed-world evaluation algorithm" plugged into the
Proposition 6.1 truncation pipeline.  Plans come from the Dalvi–Suciu
solver in :mod:`repro.logic.hierarchy`; this module interprets them
against a table through a binding environment:

* ``FactLeaf`` grounds its atom with the current binding and reads the
  fact's marginal;
* ``IndependentProject`` discovers candidate values for its separator
  variable by probing the :class:`~repro.relational.index.FactIndex`
  hash indexes (bound-column signatures — no per-atom scans) and folds
  ``1 − Π_a (1 − P(child[x↦a]))``;
* ``IndependentJoin`` / ``IndependentUnion`` multiply / co-multiply;
* ``InclusionExclusion`` sums signed term probabilities;
* ``UnsafeLeaf`` (partial plans only) delegates its residue formula to a
  caller-supplied intensional fallback.

On BID tables the independence every multiplicative node assumes is
re-checked against the block partition at evaluation time: nodes whose
subtrees touch disjoint block sets evaluate as on TI tables, same-block
alternatives combine by the disjoint-union rule
``P = 1 − Π_blocks (1 − Σ_alternatives p)``, and anything else raises
:class:`UnsafeQueryError` so ``strategy="auto"`` falls back to an
intensional engine.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Union

from repro import obs
from repro.errors import EvaluationError, UnsafeQueryError
from repro.finite.bid import BlockIndependentTable
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.hierarchy import (
    FactLeaf,
    GroupedLeaf,
    GroupedProject,
    InclusionExclusion,
    IndependentJoin,
    IndependentProject,
    IndependentUnion,
    SafePlan,
    UnsafeLeaf,
    grouped_plan_info,
    safe_plan,
    safe_plan_ucq,
)
from repro.logic.normalform import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
)
from repro.logic.queries import BooleanQuery
from repro.logic.syntax import Atom, Constant, Formula, Variable
from repro.relational.facts import Fact, Value, domain_sort_key
from repro.relational.index import FactIndex
from repro.utils.probability import (
    TINY_PROBABILITY,
    UNDERFLOW_FLOOR,
    ComplementAccumulator,
    segmented_disjunction,
)

__all__ = [
    "evaluate_plan",
    "query_probability_lifted",
    "safe_plan",
    "safe_plan_ucq",
]

LiftedTable = Union[TupleIndependentTable, BlockIndependentTable]

Binding = Dict[Variable, Value]

#: Obs counter: plan nodes evaluated as one grouped columnar pass.
LIFTED_VECTORIZED_NODES = "lifted.vectorized_nodes"
#: Obs counter: grouped evaluations that fell back to the scalar path
#: (per-group unsafe residue, or a whole-plan BID fallback).
LIFTED_SCALAR_FALLBACKS = "lifted.scalar_fallbacks"
#: Obs counter: index rows flowing through grouped probe/fold passes.
LIFTED_GROUP_ROWS = "lifted.group_rows"
#: Obs counter: separator groups served from a delta-extended
#: per-plan-node binding cache instead of re-executing the child.
LIFTED_CACHED_GROUPS = "lifted.cached_groups"
#: Obs counter: scalar-path candidate sets served from the memo.
LIFTED_CANDIDATE_MEMO_HITS = "lifted.candidate_memo_hits"

_EXECUTORS = ("auto", "scalar", "batched")


def _ground_fact(atom: Atom, binding: Binding) -> Fact:
    args: List[Value] = []
    for term in atom.terms:
        if isinstance(term, Constant):
            args.append(term.value)
        elif term in binding:
            args.append(binding[term])
        else:
            raise EvaluationError(
                f"unbound variable {term} at plan leaf {atom}"
            )
    return Fact(atom.relation, tuple(args))


def _probe_pattern(atom: Atom, binding: Binding) -> Dict[int, Value]:
    """The bound-column pattern an atom fixes under ``binding``:
    constants plus already-bound variables."""
    bound: Dict[int, Value] = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            bound[i] = term.value
        elif term in binding:
            bound[i] = binding[term]
    return bound


def _atom_candidates(
    atom: Atom,
    variable: Variable,
    index: FactIndex,
    binding: Binding,
) -> Set[Value]:
    """Values the index supports for ``variable`` in one atom: probe the
    atom's bound columns, read the variable's positions off the matching
    facts (requiring repeated positions to agree)."""
    positions = [i for i, term in enumerate(atom.terms) if term == variable]
    bound = _probe_pattern(atom, binding)
    values: Set[Value] = set()
    for fact in index.probe(atom.relation, bound):
        position_values = {fact.args[i] for i in positions}
        if len(position_values) == 1:
            values.add(position_values.pop())
    return values


def _candidate_values(
    subquery: Union[ConjunctiveQuery, UnionOfConjunctiveQueries],
    variable: Variable,
    index: FactIndex,
    binding: Binding,
) -> List[Value]:
    """Values worth grounding ``variable`` with, in the shared
    :func:`~repro.relational.facts.domain_sort_key` order (consistent
    with the join grounder, so lifted grounding is reproducible across
    backends).  For a CQ the sets from each atom containing the variable
    intersect (the separator occurs in all of them); for a UCQ the
    per-disjunct candidates union.  Values outside give subquery
    probability 0 and contribute nothing to the independent project."""
    if isinstance(subquery, UnionOfConjunctiveQueries):
        union: Set[Value] = set()
        for cq in subquery.disjuncts:
            union |= _cq_candidates(cq, variable, index, binding)
        return sorted(union, key=domain_sort_key)
    return sorted(
        _cq_candidates(subquery, variable, index, binding),
        key=domain_sort_key,
    )


def _cq_candidates(
    cq: ConjunctiveQuery,
    variable: Variable,
    index: FactIndex,
    binding: Binding,
) -> Set[Value]:
    candidate_sets: List[Set[Value]] = []
    for atom in cq.atoms:
        if variable not in {t for t in atom.terms if isinstance(t, Variable)}:
            continue
        candidate_sets.append(
            _atom_candidates(atom, variable, index, binding))
    if not candidate_sets:
        return set()
    return set.intersection(*candidate_sets)


def _plan_atoms(plan: SafePlan) -> Iterator[Atom]:
    """All atoms a plan subtree can touch — leaves, plus project scopes
    (a project's child only narrows its scope, so the scope's atoms are
    a safe superset)."""
    if isinstance(plan, FactLeaf):
        yield plan.atom
    elif isinstance(plan, (IndependentJoin, IndependentUnion)):
        for child in plan.children:
            yield from _plan_atoms(child)
    elif isinstance(plan, IndependentProject):
        yield from _scope_atoms(plan.subquery)
    elif isinstance(plan, InclusionExclusion):
        for _, term in plan.terms:
            yield from _plan_atoms(term)
    elif isinstance(plan, UnsafeLeaf):
        yield from _scope_atoms(plan.subquery)
    else:  # pragma: no cover - defensive
        raise EvaluationError(f"unknown plan node {plan!r}")


def _scope_atoms(
    scope: Union[ConjunctiveQuery, UnionOfConjunctiveQueries]
) -> Iterator[Atom]:
    if isinstance(scope, UnionOfConjunctiveQueries):
        for cq in scope.disjuncts:
            yield from cq.atoms
    else:
        yield from scope.atoms


class _PlanEvaluator:
    """Interprets a safe plan against one table via a binding
    environment; all data access goes through the table's
    :class:`~repro.relational.index.FactIndex`."""

    __slots__ = (
        "table", "index", "is_bid", "unsafe_fallback", "candidate_memo")

    def __init__(
        self,
        table: LiftedTable,
        index: FactIndex,
        unsafe_fallback: Optional[Callable[[Formula], float]] = None,
        candidate_memo: Optional[Dict[object, tuple]] = None,
    ):
        self.table = table
        self.index = index
        self.is_bid = isinstance(table, BlockIndependentTable)
        self.unsafe_fallback = unsafe_fallback
        #: Separator-candidate memo, keyed by plan-node id — pass the
        #: compile-cache family's persistent dict to keep hits across
        #: runs of one ε-sweep; entries carry the (index, epoch) they
        #: were computed at, so truncation growth invalidates them.
        self.candidate_memo = candidate_memo if candidate_memo is not None else {}

    def run(self, plan: SafePlan) -> float:
        return self._eval(plan, {})

    def _candidates(
        self, plan: IndependentProject, binding: Binding
    ) -> List[Value]:
        """Separator candidates of one project node, memoized per
        (plan node, truncation epoch).

        The candidate set depends on the binding only through scope
        variables other than the separator; when none of those is bound
        (the root-level visit, and every re-visit of the same node at
        the same truncation) the set is a pure function of (node, index
        state) and the memo serves repeats without re-probing."""
        memo = self.candidate_memo
        key = id(plan)
        scope = memo.get(("scope", key))
        if scope is None:
            scope = frozenset(
                term
                for atom in _scope_atoms(plan.subquery)
                for term in atom.terms
                if isinstance(term, Variable) and term != plan.variable
            )
            memo[("scope", key)] = scope
        if binding and not scope.isdisjoint(binding):
            return _candidate_values(
                plan.subquery, plan.variable, self.index, binding)
        index = self.index
        entry = memo.get(key)
        if (
            entry is not None
            and entry[0] is index
            and entry[1] == index.epoch
        ):
            obs.incr(LIFTED_CANDIDATE_MEMO_HITS)
            return entry[2]
        values = _candidate_values(
            plan.subquery, plan.variable, index, binding)
        memo[key] = (index, index.epoch, values)
        return values

    # ------------------------------------------------------------- dispatch
    def _eval(self, plan: SafePlan, binding: Binding) -> float:
        if isinstance(plan, FactLeaf):
            return self.table.marginal(_ground_fact(plan.atom, binding))
        if isinstance(plan, IndependentJoin):
            return self._eval_join(plan, binding)
        if isinstance(plan, IndependentUnion):
            return self._eval_union(plan, binding)
        if isinstance(plan, IndependentProject):
            return self._eval_project(plan, binding)
        if isinstance(plan, InclusionExclusion):
            return sum(
                coefficient * self._eval(term, binding)
                for coefficient, term in plan.terms
            )
        if isinstance(plan, UnsafeLeaf):
            if self.unsafe_fallback is None:
                raise UnsafeQueryError(
                    f"plan contains an unsafe residue: {plan.subquery!r}",
                    subquery=plan.subquery,
                )
            return float(self.unsafe_fallback(plan.formula()))
        raise EvaluationError(f"unknown plan node {plan!r}")

    # ------------------------------------------------------------ operators
    def _eval_join(self, plan: IndependentJoin, binding: Binding) -> float:
        if self.is_bid:
            self._require_disjoint_blocks(
                plan.children, binding, "independent join"
            )
        probability = 1.0
        for child in plan.children:
            probability *= self._eval(child, binding)
            if probability == 0.0:
                return 0.0
        return probability

    def _eval_union(self, plan: IndependentUnion, binding: Binding) -> float:
        if self.is_bid and not self._blocks_disjoint(plan.children, binding):
            if all(isinstance(c, FactLeaf) for c in plan.children):
                facts = [
                    _ground_fact(c.atom, binding) for c in plan.children
                ]
                return self._disjoint_union(facts)
            raise UnsafeQueryError(
                "BID blocks overlap across union branches; the "
                "independent-union rule does not apply"
            )
        # Log-space complement accumulation (utils.probability): the
        # naive ``complement *= 1.0 - p`` loop silently drops children
        # below one ulp of 0 and underflows past ~1e-308.
        acc = ComplementAccumulator()
        for child in plan.children:
            acc.add(self._eval(child, binding))
            if acc.is_zero:
                return 1.0
        return acc.disjunction()

    def _eval_project(
        self, plan: IndependentProject, binding: Binding
    ) -> float:
        if not self.is_bid and isinstance(plan.child, FactLeaf):
            fast = self._project_leaf_fast(plan, binding)
            if fast is not None:
                return fast
        values = self._candidates(plan, binding)
        bindings = [
            {**binding, plan.variable: value} for value in values
        ]
        if self.is_bid and not self._bindings_disjoint(plan.child, bindings):
            if isinstance(plan.child, FactLeaf):
                facts = [
                    _ground_fact(plan.child.atom, b) for b in bindings
                ]
                return self._disjoint_union(facts)
            raise UnsafeQueryError(
                "BID blocks overlap across project values; the "
                "independent-project rule does not apply"
            )
        acc = ComplementAccumulator()
        for child_binding in bindings:
            acc.add(self._eval(plan.child, child_binding))
            if acc.is_zero:
                return 1.0
        return acc.disjunction()

    def _project_leaf_fast(
        self, plan: IndependentProject, binding: Binding
    ) -> Optional[float]:
        """Columnar independent project over a single-atom leaf (TI
        tables): one index probe returns the matching row ids, the
        marginal column serves the slice, and the fold runs without
        per-candidate binding dicts, fact grounding, or recursion.

        Folds in the same ``domain_sort_key`` candidate order as the
        generic path, so results stay bit-identical (and deterministic
        across hash seeds).  Returns None when the leaf's atom has free
        variables besides the project variable — the generic path
        handles those.
        """
        atom = plan.child.atom
        variable = plan.variable
        positions: List[int] = []
        for i, term in enumerate(atom.terms):
            if term == variable:
                positions.append(i)
            elif isinstance(term, Constant) or term in binding:
                continue
            else:
                return None
        if not positions:
            return None
        rows = self.index.probe_rows(
            atom.relation, _probe_pattern(atom, binding))
        if not rows:
            return 0.0
        column = self.index.marginal_column(self.table)
        fact_at = self.index.fact_at
        first, rest = positions[0], positions[1:]
        pairs = []
        for row in rows:
            args = fact_at(row).args
            value = args[first]
            if any(args[i] != value for i in rest):
                continue  # repeated positions disagree: no candidate
            pairs.append((domain_sort_key(value), row))
        pairs.sort()
        acc = ComplementAccumulator()
        for _, row in pairs:
            acc.add(column[row])
            if acc.is_zero:
                return 1.0
        return acc.disjunction()

    # ------------------------------------------------------- BID machinery
    def _touched_blocks(self, plan: SafePlan, binding: Binding) -> Set[str]:
        """Names of every block a subtree can read under ``binding`` —
        a superset, derived by probing each reachable atom's bound
        columns."""
        names: Set[str] = set()
        assert isinstance(self.table, BlockIndependentTable)
        for atom in _plan_atoms(plan):
            bound = _probe_pattern(atom, binding)
            for fact in self.index.probe(atom.relation, bound):
                block = self.table.block_of(fact)
                if block is not None:
                    names.add(block.name)
        return names

    def _blocks_disjoint(self, children, binding: Binding) -> bool:
        seen: Set[str] = set()
        for child in children:
            touched = self._touched_blocks(child, binding)
            if touched & seen:
                return False
            seen |= touched
        return True

    def _bindings_disjoint(self, child: SafePlan, bindings) -> bool:
        seen: Set[str] = set()
        for child_binding in bindings:
            touched = self._touched_blocks(child, child_binding)
            if touched & seen:
                return False
            seen |= touched
        return True

    def _require_disjoint_blocks(
        self, children, binding: Binding, rule: str
    ) -> None:
        if not self._blocks_disjoint(children, binding):
            raise UnsafeQueryError(
                f"BID blocks overlap across {rule} operands; the plan's "
                "independence assumption fails on this table"
            )

    def _disjoint_union(self, facts) -> float:
        """``P(∨ facts)`` when the facts may share blocks: within a
        block alternatives are mutually exclusive (masses add), across
        blocks independent."""
        assert isinstance(self.table, BlockIndependentTable)
        per_block: Dict[str, float] = {}
        seen: Set[Fact] = set()
        for fact in facts:
            if fact in seen:
                continue
            seen.add(fact)
            block = self.table.block_of(fact)
            if block is None:
                continue  # impossible fact: contributes 0
            mass = per_block.get(block.name, 0.0) + block.probability(fact)
            per_block[block.name] = mass
        acc = ComplementAccumulator()
        for mass in per_block.values():
            acc.add(min(1.0, mass))
            if acc.is_zero:
                return 1.0
        return acc.disjunction()


class _Groups:
    """A group table: ``size`` separator-binding rows, one value column
    per bound variable.  The batched evaluator threads one of these
    through the plan instead of a per-candidate binding dict — node
    evaluation returns one probability per group row."""

    __slots__ = ("size", "columns")

    def __init__(self, size: int, columns: Dict[Variable, List[Value]]):
        self.size = size
        self.columns = columns


class _ProjectDeltaCache:
    """Per-plan-node binding table of a root-level project: the
    separator values discovered so far with their child probabilities,
    stamped with the index state they were computed at.  An ε-sweep's
    next truncation re-executes only the values its delta facts touch —
    sound because the separator occurs in every scope atom, so a new
    fact can only perturb the candidate value it mentions (and existing
    facts' marginals never change under extension)."""

    __slots__ = (
        "index", "source", "epoch", "values", "probs", "slots", "result",
    )

    def __init__(self, index, source, epoch, values, probs):
        self.index = index
        #: The table the child probabilities were computed against —
        #: index and epoch alone don't pin them, because two tables
        #: with one fact set (same family index) may disagree on
        #: marginals.  Sweeps extend one table in place, so identity
        #: is the right key.
        self.source = source
        self.epoch = epoch
        self.values: List[Value] = values
        self.probs: List[float] = probs
        self.slots: Dict[Value, int] = {v: i for i, v in enumerate(values)}
        #: The folded disjunction over ``probs`` — a warm re-evaluation
        #: of an unchanged truncation (the serving hot path) returns it
        #: without re-folding.
        self.result: Optional[float] = None


class _BatchedEvaluator:
    """Set-at-a-time plan interpreter over the columnar layer (TI
    tables).

    Where :class:`_PlanEvaluator` recurses once per separator candidate,
    this evaluator visits each plan node **once per node**: a project
    materializes all its separator bindings as a group table, the child
    subplan evaluates for every group in one pass, and the fold back to
    per-parent-group probabilities is a segmented hybrid log-space
    reduction (:func:`repro.utils.probability.segmented_disjunction`).
    Numerically it applies the exact per-element policy of
    :class:`~repro.utils.probability.ComplementAccumulator`, so dyadic
    marginals stay bit-exact against the scalar path and the other
    exact strategies.

    BID tables keep the scalar path: their disjoint-union rule needs
    per-binding block inspection (see ``_run_plan``).
    """

    __slots__ = (
        "table", "index", "unsafe_fallback", "info", "node_caches",
        "column", "np", "marginals",
    )

    def __init__(
        self,
        table: LiftedTable,
        index: FactIndex,
        unsafe_fallback: Optional[Callable[[Formula], float]] = None,
        info: Optional[Dict[int, object]] = None,
        node_caches: Optional[Dict[int, _ProjectDeltaCache]] = None,
    ):
        if isinstance(table, BlockIndependentTable):  # pragma: no cover
            raise EvaluationError(
                "the batched executor evaluates TI tables only")
        self.table = table
        self.index = index
        self.unsafe_fallback = unsafe_fallback
        self.info = info
        self.node_caches = node_caches
        self.column = index.marginal_column(table)
        if self.column.backend == "numpy":
            from repro.utils.probability import numpy_or_none

            self.np = numpy_or_none()
        else:
            self.np = None
        #: Zero-copy marginal values aligned to row ids (list or array).
        self.marginals = self.column.view()

    def run(self, plan: SafePlan) -> float:
        if self.info is None:
            self.info = grouped_plan_info(plan)
        out = self._eval(plan, _Groups(1, {}))
        return float(out[0])

    # ------------------------------------------------------------- dispatch
    def _eval(self, plan: SafePlan, groups: _Groups):
        if isinstance(plan, FactLeaf):
            return self._eval_leaf(plan, groups)
        if isinstance(plan, IndependentJoin):
            return self._eval_join(plan, groups)
        if isinstance(plan, IndependentUnion):
            return self._eval_union(plan, groups)
        if isinstance(plan, IndependentProject):
            return self._eval_project(plan, groups)
        if isinstance(plan, InclusionExclusion):
            return self._eval_inclusion_exclusion(plan, groups)
        if isinstance(plan, UnsafeLeaf):
            return self._eval_unsafe(plan, groups)
        raise EvaluationError(f"unknown plan node {plan!r}")

    # ------------------------------------------------------------ operators
    def _eval_leaf(self, plan: FactLeaf, groups: _Groups):
        """Ground every group's binding of the leaf atom in one sweep of
        the full-arity signature table; absent facts contribute 0."""
        obs.incr(LIFTED_VECTORIZED_NODES)
        leaf: GroupedLeaf = self.info[id(plan)]
        columns = []
        for kind, payload in leaf.layout:
            if kind == "c":
                columns.append(itertools.repeat(payload, groups.size))
            else:
                column = groups.columns.get(payload)
                if column is None:
                    raise EvaluationError(
                        f"unbound variable {payload} at plan leaf {plan.atom}"
                    )
                columns.append(column)
        table = self.index.signature_table(
            leaf.relation, tuple(range(len(leaf.layout))))
        lookup = table.get
        if leaf.layout:
            keys = zip(*columns)
        else:
            keys = itertools.repeat((), groups.size)
        rows = []
        for key in keys:
            bucket = lookup(key)
            rows.append(bucket[0] if bucket else -1)
        obs.incr(LIFTED_GROUP_ROWS, groups.size)
        np = self.np
        if np is None:
            marginals = self.marginals
            return [marginals[row] if row >= 0 else 0.0 for row in rows]
        row_array = np.asarray(rows, dtype=np.intp)
        out = np.zeros(len(rows), dtype=np.float64)
        present = row_array >= 0
        if bool(present.any()):
            out[present] = self.column.array()[row_array[present]]
        return out

    def _eval_join(self, plan: IndependentJoin, groups: _Groups):
        obs.incr(LIFTED_VECTORIZED_NODES)
        np = self.np
        if np is None:
            totals = [1.0] * groups.size
            for child in plan.children:
                vector = self._eval(child, groups)
                for g, p in enumerate(vector):
                    totals[g] *= p
            return totals
        out = np.ones(groups.size, dtype=np.float64)
        for child in plan.children:
            out = out * np.asarray(self._eval(child, groups))
        return out

    def _eval_union(self, plan: IndependentUnion, groups: _Groups):
        obs.incr(LIFTED_VECTORIZED_NODES)
        vectors = [self._eval(child, groups) for child in plan.children]
        return self._fold_disjunction(vectors, groups.size)

    def _eval_inclusion_exclusion(
        self, plan: InclusionExclusion, groups: _Groups
    ):
        obs.incr(LIFTED_VECTORIZED_NODES)
        np = self.np
        if np is None:
            totals = [0.0] * groups.size
            for coefficient, term in plan.terms:
                vector = self._eval(term, groups)
                for g, p in enumerate(vector):
                    totals[g] += coefficient * p
            return totals
        out = np.zeros(groups.size, dtype=np.float64)
        for coefficient, term in plan.terms:
            out = out + coefficient * np.asarray(self._eval(term, groups))
        return out

    def _eval_unsafe(self, plan: UnsafeLeaf, groups: _Groups):
        if self.unsafe_fallback is None:
            raise UnsafeQueryError(
                f"plan contains an unsafe residue: {plan.subquery!r}",
                subquery=plan.subquery,
            )
        # Unsafe residue exists only at the root level (the solver never
        # wraps it under a project), so its formula is binding-free: one
        # intensional evaluation serves every group.
        obs.incr(LIFTED_SCALAR_FALLBACKS, groups.size)
        value = float(self.unsafe_fallback(plan.formula()))
        out = [value] * groups.size
        if self.np is not None:
            return self.np.asarray(out, dtype=self.np.float64)
        return out

    # -------------------------------------------------------------- project
    def _eval_project(self, plan: IndependentProject, groups: _Groups):
        obs.incr(LIFTED_VECTORIZED_NODES)
        info: GroupedProject = self.info[id(plan)]
        if (
            self.node_caches is not None
            and info.cacheable
            and groups.size == 1
            and not groups.columns
        ):
            return self._project_root_cached(plan, info)
        if isinstance(plan.child, FactLeaf):
            fast = self._project_leaf(plan, groups)
            if fast is not None:
                return fast
        values, offsets = self._candidate_groups(info, groups)
        child_groups = self._expand(groups, info.variable, values, offsets)
        vector = self._eval(plan.child, child_groups)
        return self._segmented_disjunction(vector, offsets)

    def _project_leaf(self, plan: IndependentProject, groups: _Groups):
        """Grouped form of the single-leaf project fast path: one
        ``probe_rows_multi`` sweep yields every group's candidate rows,
        and the marginal column folds them segment-at-a-time.  Mirrors
        the scalar ``_project_leaf_fast`` exactly — candidates come from
        the child atom alone — and bails to the generic path (None) when
        the leaf has free variables besides the separator."""
        leaf: GroupedLeaf = self.info[id(plan.child)]
        variable = plan.variable
        separator_positions: List[int] = []
        context = []
        for position, (kind, payload) in enumerate(leaf.layout):
            if kind == "v" and payload == variable:
                separator_positions.append(position)
            elif kind == "c":
                context.append((position, ("c", payload)))
            else:
                column = groups.columns.get(payload)
                if column is None:
                    return None
                context.append((position, ("v", column)))
        if not separator_positions:
            return None
        context.sort()
        positions = tuple(p for p, _ in context)
        sources = tuple(s for _, s in context)
        keys = (
            tuple(
                payload if kind == "c" else payload[g]
                for kind, payload in sources
            )
            for g in range(groups.size)
        )
        flat, offsets = self.index.probe_rows_multi(
            leaf.relation, positions, keys)
        # Re-fold every segment in canonical separator-value order
        # (``domain_sort_key``, as the scalar fast path does): bucket
        # order is index-interning order, which depends on the shared
        # index's rebuild/extend history and would make concurrent
        # sweeps differ from a serial one by float rounding.
        first, rest = separator_positions[0], separator_positions[1:]
        fact_at = self.index.fact_at
        filtered: List[int] = []
        new_offsets = [0]
        for g in range(groups.size):
            segment = []
            for row in flat[offsets[g]:offsets[g + 1]]:
                args = fact_at(row).args
                value = args[first]
                if rest and any(args[p] != value for p in rest):
                    continue
                segment.append((domain_sort_key(value), row))
            segment.sort()
            filtered.extend(row for _, row in segment)
            new_offsets.append(len(filtered))
        flat, offsets = filtered, new_offsets
        obs.incr(LIFTED_GROUP_ROWS, len(flat))
        return self.column.segmented_disjunction(flat, offsets)

    def _project_root_cached(
        self, plan: IndependentProject, info: GroupedProject
    ):
        """Root-level project with a delta-extended binding table: the
        first run materializes every (value, child probability) pair;
        later runs re-execute only values the index delta touches."""
        caches = self.node_caches
        cache = caches.get(id(plan))
        index = self.index
        if (
            cache is None
            or cache.index is not index
            or cache.source is not self.table
            or cache.epoch > index.epoch
        ):
            root = _Groups(1, {})
            values, offsets = self._candidate_groups(info, root)
            child_groups = _Groups(
                len(values), {info.variable: list(values)})
            vector = self._eval(plan.child, child_groups)
            cache = _ProjectDeltaCache(
                index, self.table, index.epoch, list(values),
                [float(p) for p in vector])
            caches[id(plan)] = cache
        elif cache.epoch < index.epoch:
            fresh = self._fresh_candidates(info, cache)
            reused = len(cache.values) - sum(
                1 for value in fresh if value in cache.slots)
            if reused:
                obs.incr(LIFTED_CACHED_GROUPS, reused)
            if fresh:
                child_groups = _Groups(
                    len(fresh), {info.variable: list(fresh)})
                vector = self._eval(plan.child, child_groups)
                inserted = False
                for value, probability in zip(fresh, vector):
                    slot = cache.slots.get(value)
                    if slot is None:
                        cache.slots[value] = len(cache.values)
                        cache.values.append(value)
                        cache.probs.append(float(probability))
                        inserted = True
                    else:
                        cache.probs[slot] = float(probability)
                if inserted:
                    # Restore canonical fold order (appends land at the
                    # end): Timsort on the mostly-sorted pair list is
                    # ~linear, and a history-independent order keeps
                    # delta-extended sweeps bit-identical to a fresh
                    # full evaluation.
                    pairs = sorted(
                        zip(cache.values, cache.probs),
                        key=lambda pair: domain_sort_key(pair[0]),
                    )
                    cache.values = [value for value, _ in pairs]
                    cache.probs = [prob for _, prob in pairs]
                    cache.slots = {
                        value: i for i, value in enumerate(cache.values)
                    }
            cache.epoch = index.epoch
        else:
            obs.incr(LIFTED_CACHED_GROUPS, len(cache.values))
            if cache.result is not None:
                # Warm truncation, warm fold: nothing changed.
                return [cache.result]
        probs = cache.probs
        folded = self._segmented_disjunction(probs, [0, len(probs)])
        cache.result = float(folded[0])
        return folded

    def _fresh_candidates(
        self, info: GroupedProject, cache: _ProjectDeltaCache
    ) -> List[Value]:
        """Separator values the delta facts touch and that are (now)
        candidates — the only values whose child probability can differ
        from the cached one.  Candidacy is monotone under append-only
        extension, so cached values never need revoking."""
        delta = self.index.facts_since(cache.epoch)
        touched: Dict[Value, None] = {}
        for fact in delta:
            for atoms in info.per_disjunct:
                for grouped in atoms:
                    if fact.relation != grouped.relation:
                        continue
                    if any(
                        fact.args[p] != value
                        for p, value in grouped.constants
                    ):
                        continue
                    values = {
                        fact.args[p]
                        for p in grouped.separator_positions
                    }
                    if len(values) == 1:
                        touched.setdefault(values.pop(), None)
        return [
            value for value in touched if self._is_candidate(info, value)
        ]

    def _is_candidate(self, info: GroupedProject, value: Value) -> bool:
        """Root-level candidacy of one separator value: some disjunct
        has, for *every* atom containing the separator, a fact matching
        its constants with the value at all separator positions."""
        index = self.index
        for atoms in info.per_disjunct:
            candidate_atoms = [a for a in atoms if a.separator_positions]
            if not candidate_atoms:
                continue
            for grouped in candidate_atoms:
                entries = list(grouped.constants) + [
                    (p, value) for p in grouped.separator_positions
                ]
                entries.sort()
                positions = tuple(p for p, _ in entries)
                key = tuple(v for _, v in entries)
                table = index.signature_table(grouped.relation, positions)
                if key not in table:
                    break
            else:
                return True
        return False

    # ----------------------------------------------------------- candidates
    def _candidate_groups(self, info: GroupedProject, groups: _Groups):
        """Separator candidates of every group in one pass: per group,
        the ordered union over disjuncts of (base-atom bucket values
        filtered by membership in the disjunct's other atoms) — the
        grouped form of the scalar per-atom-set intersection.  Returns
        ``(values, offsets)`` in the segment layout."""
        index = self.index
        prepared = []
        for atoms in info.per_disjunct:
            candidate_atoms = [a for a in atoms if a.separator_positions]
            if not candidate_atoms:
                prepared.append(None)
                continue
            entries = []
            for grouped in candidate_atoms:
                context = [(p, ("c", v)) for p, v in grouped.constants]
                for p, var in grouped.variables:
                    column = groups.columns.get(var)
                    if column is not None:
                        context.append((p, ("v", column)))
                context.sort()
                context_positions = tuple(p for p, _ in context)
                context_sources = tuple(s for _, s in context)
                full = context + [
                    (p, ("s", None)) for p in grouped.separator_positions
                ]
                full.sort()
                full_positions = tuple(p for p, _ in full)
                full_sources = tuple(s for _, s in full)
                entries.append((
                    grouped,
                    index.signature_table(
                        grouped.relation, context_positions),
                    context_sources,
                    index.signature_table(grouped.relation, full_positions),
                    full_sources,
                ))
            prepared.append(entries)
        fact_at = index.fact_at
        flat: List[Value] = []
        offsets = [0]
        scanned = 0
        for g in range(groups.size):
            seen: Dict[Value, None] = {}
            for entries in prepared:
                if entries is None:
                    continue
                base, base_table, base_sources, _, _ = entries[0]
                base_key = tuple(
                    payload if kind == "c" else payload[g]
                    for kind, payload in base_sources
                )
                bucket = base_table.get(base_key)
                if not bucket:
                    continue
                scanned += len(bucket)
                first = base.separator_positions[0]
                rest = base.separator_positions[1:]
                local: Set[Value] = set()
                for row in bucket:
                    args = fact_at(row).args
                    value = args[first]
                    if value in local:
                        continue
                    if any(args[p] != value for p in rest):
                        continue
                    local.add(value)
                    for _, _, _, full_table, full_sources in entries[1:]:
                        full_key = tuple(
                            payload if kind == "c"
                            else (payload[g] if kind == "v" else value)
                            for kind, payload in full_sources
                        )
                        if full_key not in full_table:
                            break
                    else:
                        seen.setdefault(value, None)
            # Canonical per-group candidate order (the scalar path's
            # ``domain_sort_key``): bucket discovery order depends on
            # the shared index's history and would leak into the fold's
            # float rounding.
            flat.extend(sorted(seen, key=domain_sort_key))
            offsets.append(len(flat))
        return flat, offsets

    def _expand(
        self,
        groups: _Groups,
        variable: Variable,
        values: List[Value],
        offsets: List[int],
    ) -> _Groups:
        """The child group table of a project: each parent group row is
        repeated once per candidate value, and the separator becomes a
        new bound column."""
        columns: Dict[Variable, List[Value]] = {}
        for var, column in groups.columns.items():
            expanded: List[Value] = []
            for g in range(groups.size):
                expanded.extend(
                    itertools.repeat(
                        column[g], offsets[g + 1] - offsets[g]))
            columns[var] = expanded
        columns[variable] = list(values)
        return _Groups(len(values), columns)

    # ---------------------------------------------------------------- folds
    def _segmented_disjunction(self, vector, offsets):
        """Fold a per-candidate probability vector back to one
        disjunction per parent group."""
        return segmented_disjunction(self.np, vector, offsets)

    def _fold_disjunction(self, vectors, size: int):
        """Elementwise hybrid disjunction across child vectors — the
        vector form of the union fold's ``ComplementAccumulator``, same
        per-element operation order."""
        np = self.np
        if np is None:
            accumulators = [ComplementAccumulator() for _ in range(size)]
            for vector in vectors:
                for accumulator, p in zip(accumulators, vector):
                    accumulator.add(p)
            return [accumulator.disjunction() for accumulator in accumulators]
        product = np.ones(size, dtype=np.float64)
        residual = np.zeros(size, dtype=np.float64)
        zero = np.zeros(size, dtype=bool)
        for vector in vectors:
            vector = np.asarray(vector, dtype=np.float64)
            ones = vector >= 1.0
            tiny = (vector > 0.0) & (vector < TINY_PROBABILITY)
            zero |= ones
            residual = residual - np.where(tiny, vector, 0.0)
            product = product * np.where(ones | tiny, 1.0, 1.0 - vector)
            low = (product < UNDERFLOW_FLOOR) & ~zero
            if bool(low.any()):
                residual[low] += np.log(product[low])
                product[low] = 1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            rescued = -np.expm1(np.log(product) + residual)
        out = np.where(residual == 0.0, 1.0 - product, rescued)
        out[zero] = 1.0
        return out


def _run_plan(
    plan: SafePlan,
    table: LiftedTable,
    index: FactIndex,
    unsafe_fallback: Optional[Callable[[Formula], float]],
    executor: str,
    state=None,
) -> float:
    """Dispatch one plan run to the batched or scalar executor.

    ``executor="auto"`` routes TI tables to the batched set-at-a-time
    executor and BID tables to the scalar one (the disjoint-union rule
    needs per-binding block inspection); ``"scalar"`` forces the legacy
    candidate-at-a-time interpreter; ``"batched"`` forces the grouped
    pipeline where it applies, counting a ``lifted.scalar_fallbacks``
    when a BID table sends it back to the scalar path anyway.

    ``state`` is a compile-cache family's
    :class:`~repro.finite.compile_cache.LiftedExecState`: it carries the
    persistent per-plan-node binding tables (delta-extended across
    ε-sweep truncations), the plan-annotation side tables, and the
    scalar path's candidate memo.
    """
    if executor not in _EXECUTORS:
        raise EvaluationError(
            f"unknown lifted executor {executor!r}; "
            f"expected one of {_EXECUTORS}"
        )
    is_bid = isinstance(table, BlockIndependentTable)
    if executor != "scalar" and not is_bid:
        if state is not None:
            with state.lock:
                evaluator = _BatchedEvaluator(
                    table, index, unsafe_fallback,
                    state.annotations_for(plan), state.node_caches)
                return evaluator.run(plan)
        return _BatchedEvaluator(table, index, unsafe_fallback).run(plan)
    if executor == "batched" and is_bid:
        obs.incr(LIFTED_SCALAR_FALLBACKS)
    memo = state.candidate_memo if state is not None else None
    return _PlanEvaluator(
        table, index, unsafe_fallback, candidate_memo=memo).run(plan)


def evaluate_plan(
    plan: SafePlan, table: LiftedTable, executor: str = "auto"
) -> float:
    """Evaluate a compiled :class:`SafePlan` on a TI (or BID) table.

    Builds a fresh :class:`~repro.relational.index.FactIndex` over the
    table's possible facts; callers evaluating one query family across
    growing truncations should go through
    :func:`query_probability_lifted`, which reuses a delta-extended
    index, caches plans, and keeps warm per-node binding tables.

    ``executor`` picks the interpreter: ``"auto"`` (batched
    set-at-a-time on TI tables, scalar on BID), ``"scalar"``, or
    ``"batched"``.

    >>> from repro.relational import Schema
    >>> from repro.logic.syntax import Atom, Variable
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> plan = safe_plan(ConjunctiveQuery([Atom(R, (Variable("x"),))]))
    >>> round(evaluate_plan(plan, table), 10)
    0.75
    """
    if not isinstance(
        table, (TupleIndependentTable, BlockIndependentTable)
    ):
        raise EvaluationError("lifted evaluation needs a TI or BID table")
    index = FactIndex(table.facts())
    return _run_plan(plan, table, index, None, executor)


def query_probability_lifted(
    query: BooleanQuery,
    table: LiftedTable,
    plan_cache=None,
    partial: bool = False,
    unsafe_fallback: Optional[Callable[[Formula], float]] = None,
    executor: str = "auto",
) -> float:
    """Exact ``P(Q)`` via safe plans, or :class:`UnsafeQueryError`.

    The query must be (equivalent to) a Boolean UCQ with a safe plan
    under the Dalvi–Suciu rules of :mod:`repro.logic.hierarchy` — the
    error of an unsafe query carries the minimal offending subquery as
    ``exc.subquery``.

    ``plan_cache`` is a :class:`~repro.finite.compile_cache.CompileCache`
    (defaulting to the process-wide one): plans are compiled once per
    query family, the family's fact index is delta-extended across
    growing truncations, and cache traffic shows up in the
    ``lifted.plans`` / ``lifted.plan_cache_hits`` counters.

    With ``partial=True`` an unsafe query still evaluates if some
    top-level components are safe: the unsafe residue components are
    delegated to ``unsafe_fallback(formula)`` (required in that case by
    evaluation time); a wholly unsafe query raises even in partial mode.

    ``executor`` picks the plan interpreter — ``"auto"`` runs the
    batched set-at-a-time executor on TI tables (scalar on BID),
    ``"scalar"`` forces the candidate-at-a-time path, ``"batched"``
    forces the grouped pipeline (BID still falls back, counted).  The
    batched executor keeps per-plan-node binding tables in the cache
    family and delta-extends them across a sweep's truncations, so only
    new separator groups re-execute (``lifted.cached_groups``).

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1, 1): 0.5, R(2, 1): 0.4})
    >>> q = BooleanQuery(parse_formula("EXISTS x, y. R(x, y)", schema), schema)
    >>> round(query_probability_lifted(q, table), 10)
    0.7
    """
    if not isinstance(
        table, (TupleIndependentTable, BlockIndependentTable)
    ):
        raise EvaluationError("lifted evaluation needs a TI or BID table")
    from repro.finite.compile_cache import DEFAULT_COMPILE_CACHE

    cache = plan_cache if plan_cache is not None else DEFAULT_COMPILE_CACHE
    state_of = getattr(cache, "lifted_state", None)
    state = state_of(query.formula) if state_of is not None else None
    if (
        state is not None
        and executor != "scalar"
        and not isinstance(table, BlockIndependentTable)
    ):
        # Batched execution over a shared family: hold the family
        # stripe lock (== ``state.lock``, reentrant) from grounding
        # through execution, so the shared index holds *exactly* this
        # table's facts for the whole run.  Another session of the same
        # family grounding a different truncation in between would
        # extend the index with facts this table does not have yet —
        # their marginals would sync as 0.0 and the binding-table
        # epochs would cover facts never actually folded in, silently
        # corrupting later delta reuse once this table catches up.
        with state.lock:
            plan, index = cache.lifted(query.formula, table, partial=partial)
            return _run_plan(
                plan, table, index, unsafe_fallback, executor, state)
    plan, index = cache.lifted(query.formula, table, partial=partial)
    return _run_plan(plan, table, index, unsafe_fallback, executor, state)

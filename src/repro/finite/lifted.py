"""Lifted (extensional) query evaluation via safe plans.

Evaluates hierarchical, self-join-free Boolean CQs (and UCQs with
symbol-disjoint disjuncts) in polynomial time on finite tuple-independent
tables — the efficient "traditional closed-world evaluation algorithm"
plugged into the Proposition 6.1 truncation pipeline.

Correctness relies on the independence structure the plan certifies:

* ground atoms over distinct relations are independent facts;
* connected components sharing no variables touch disjoint fact sets;
* grounding a root variable with distinct constants yields subqueries
  over disjoint fact sets, so ``P(∃x φ) = 1 − Π_a (1 − P(φ[x↦a]))``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.errors import UnsafeQueryError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.hierarchy import (
    FactLeaf,
    IndependentJoin,
    IndependentProject,
    IndependentUnion,
    SafePlan,
    safe_plan,
    safe_plan_ucq,
)
from repro.logic.normalform import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    extract_ucq,
)
from repro.logic.queries import BooleanQuery
from repro.logic.syntax import Atom, Constant, Term, Variable
from repro.relational.facts import Fact, Value


def _ground_atom(atom: Atom, binding: Dict[Variable, Value]) -> Atom:
    terms: List[Term] = []
    for term in atom.terms:
        if isinstance(term, Variable) and term in binding:
            terms.append(Constant(binding[term]))
        else:
            terms.append(term)
    return Atom(atom.relation, terms)


def _candidate_values(
    cq: ConjunctiveQuery,
    variable: Variable,
    table: TupleIndependentTable,
) -> List[Value]:
    """Values worth grounding ``variable`` with: the intersection over
    atoms containing it of the table's values at the variable's
    positions.  Values outside give subquery probability 0 and contribute
    nothing to the independent project."""
    candidate_sets: List[Set[Value]] = []
    for atom in cq.atoms:
        positions = [
            i for i, term in enumerate(atom.terms) if term == variable
        ]
        if not positions:
            continue
        values: Set[Value] = set()
        for fact in table.marginals:
            if fact.relation != atom.relation:
                continue
            position_values = {fact.args[i] for i in positions}
            if len(position_values) == 1:
                values.add(position_values.pop())
        candidate_sets.append(values)
    if not candidate_sets:
        return []
    common = set.intersection(*candidate_sets)
    return sorted(common, key=repr)


def _cq_probability(cq: ConjunctiveQuery, table: TupleIndependentTable) -> float:
    """Recursive safe-plan evaluation of a Boolean CQ."""
    if cq.head_variables:
        raise UnsafeQueryError("lifted evaluation expects a Boolean CQ")
    existential = cq.existential_variables
    if not existential:
        probability = 1.0
        seen: Set[Fact] = set()
        for atom in cq.atoms:
            fact = Fact(atom.relation, tuple(t.value for t in atom.terms))  # type: ignore[union-attr]
            if fact in seen:
                continue  # idempotent conjunct
            seen.add(fact)
            probability *= table.marginal(fact)
            if probability == 0.0:
                return 0.0
        return probability
    components = _components(cq)
    if len(components) > 1:
        probability = 1.0
        for atoms in components:
            probability *= _cq_probability(ConjunctiveQuery(atoms), table)
            if probability == 0.0:
                return 0.0
        return probability
    roots = _roots(cq)
    if not roots:
        raise UnsafeQueryError(f"no root variable: {cq!r} is not hierarchical")
    root = sorted(roots, key=lambda v: v.name)[0]
    complement_product = 1.0
    for value in _candidate_values(cq, root, table):
        grounded = ConjunctiveQuery(
            [_ground_atom(atom, {root: value}) for atom in cq.atoms]
        )
        complement_product *= 1.0 - _cq_probability(grounded, table)
        if complement_product == 0.0:
            return 1.0
    return 1.0 - complement_product


def _components(cq: ConjunctiveQuery) -> List[Tuple[Atom, ...]]:
    from repro.logic.hierarchy import _connected_components

    return _connected_components(cq)


def _roots(cq: ConjunctiveQuery) -> FrozenSet[Variable]:
    from repro.logic.hierarchy import _root_variables

    return _root_variables(cq)


def evaluate_plan(plan: SafePlan, table: TupleIndependentTable) -> float:
    """Evaluate a compiled :class:`SafePlan` on a TI table.

    >>> from repro.relational import Schema
    >>> from repro.logic.syntax import Atom, Variable
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> plan = safe_plan(ConjunctiveQuery([Atom(R, (Variable("x"),))]))
    >>> round(evaluate_plan(plan, table), 10)
    0.75
    """
    if isinstance(plan, FactLeaf):
        fact = Fact(
            plan.atom.relation,
            tuple(t.value for t in plan.atom.terms),  # type: ignore[union-attr]
        )
        return table.marginal(fact)
    if isinstance(plan, IndependentJoin):
        probability = 1.0
        for child in plan.children:
            probability *= evaluate_plan(child, table)
        return probability
    if isinstance(plan, IndependentUnion):
        complement = 1.0
        for child in plan.children:
            complement *= 1.0 - evaluate_plan(child, table)
        return 1.0 - complement
    if isinstance(plan, IndependentProject):
        complement = 1.0
        for value in _candidate_values(plan.subquery, plan.variable, table):
            grounded = ConjunctiveQuery(
                [
                    _ground_atom(atom, {plan.variable: value})
                    for atom in plan.subquery.atoms
                ]
            )
            complement *= 1.0 - _cq_probability(grounded, table)
        return 1.0 - complement
    raise UnsafeQueryError(f"unknown plan node {plan!r}")


def query_probability_lifted(
    query: BooleanQuery,
    table: TupleIndependentTable,
) -> float:
    """Exact ``P(Q)`` via safe plans, or :class:`UnsafeQueryError`.

    The query must be (equivalent to) a Boolean UCQ whose disjuncts are
    self-join-free and hierarchical, with pairwise symbol-disjoint
    disjuncts when there is more than one.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1, 1): 0.5, R(2, 1): 0.4})
    >>> q = BooleanQuery(parse_formula("EXISTS x, y. R(x, y)", schema), schema)
    >>> round(query_probability_lifted(q, table), 10)
    0.7
    """
    ucq = extract_ucq(query.formula)
    if ucq is None:
        raise UnsafeQueryError(
            f"query {query.name} is not a UCQ; use lineage evaluation"
        )
    plan = safe_plan_ucq(ucq)  # validates hierarchy/self-join-freeness
    if isinstance(plan, IndependentUnion):
        complement = 1.0
        for cq in ucq.disjuncts:
            complement *= 1.0 - _cq_probability(cq, table)
        return 1.0 - complement
    return _cq_probability(ucq.disjuncts[0], table)

"""Lifted (extensional) query evaluation via safe plans.

Evaluates safe Boolean UCQs in polynomial time on finite
tuple-independent and block-independent tables — the efficient
"traditional closed-world evaluation algorithm" plugged into the
Proposition 6.1 truncation pipeline.  Plans come from the Dalvi–Suciu
solver in :mod:`repro.logic.hierarchy`; this module interprets them
against a table through a binding environment:

* ``FactLeaf`` grounds its atom with the current binding and reads the
  fact's marginal;
* ``IndependentProject`` discovers candidate values for its separator
  variable by probing the :class:`~repro.relational.index.FactIndex`
  hash indexes (bound-column signatures — no per-atom scans) and folds
  ``1 − Π_a (1 − P(child[x↦a]))``;
* ``IndependentJoin`` / ``IndependentUnion`` multiply / co-multiply;
* ``InclusionExclusion`` sums signed term probabilities;
* ``UnsafeLeaf`` (partial plans only) delegates its residue formula to a
  caller-supplied intensional fallback.

On BID tables the independence every multiplicative node assumes is
re-checked against the block partition at evaluation time: nodes whose
subtrees touch disjoint block sets evaluate as on TI tables, same-block
alternatives combine by the disjoint-union rule
``P = 1 − Π_blocks (1 − Σ_alternatives p)``, and anything else raises
:class:`UnsafeQueryError` so ``strategy="auto"`` falls back to an
intensional engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Union

from repro.errors import EvaluationError, UnsafeQueryError
from repro.finite.bid import BlockIndependentTable
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.hierarchy import (
    FactLeaf,
    InclusionExclusion,
    IndependentJoin,
    IndependentProject,
    IndependentUnion,
    SafePlan,
    UnsafeLeaf,
    safe_plan,
    safe_plan_ucq,
)
from repro.logic.normalform import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
)
from repro.logic.queries import BooleanQuery
from repro.logic.syntax import Atom, Constant, Formula, Variable
from repro.relational.facts import Fact, Value, domain_sort_key
from repro.relational.index import FactIndex
from repro.utils.probability import ComplementAccumulator

__all__ = [
    "evaluate_plan",
    "query_probability_lifted",
    "safe_plan",
    "safe_plan_ucq",
]

LiftedTable = Union[TupleIndependentTable, BlockIndependentTable]

Binding = Dict[Variable, Value]


def _ground_fact(atom: Atom, binding: Binding) -> Fact:
    args: List[Value] = []
    for term in atom.terms:
        if isinstance(term, Constant):
            args.append(term.value)
        elif term in binding:
            args.append(binding[term])
        else:
            raise EvaluationError(
                f"unbound variable {term} at plan leaf {atom}"
            )
    return Fact(atom.relation, tuple(args))


def _probe_pattern(atom: Atom, binding: Binding) -> Dict[int, Value]:
    """The bound-column pattern an atom fixes under ``binding``:
    constants plus already-bound variables."""
    bound: Dict[int, Value] = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            bound[i] = term.value
        elif term in binding:
            bound[i] = binding[term]
    return bound


def _atom_candidates(
    atom: Atom,
    variable: Variable,
    index: FactIndex,
    binding: Binding,
) -> Set[Value]:
    """Values the index supports for ``variable`` in one atom: probe the
    atom's bound columns, read the variable's positions off the matching
    facts (requiring repeated positions to agree)."""
    positions = [i for i, term in enumerate(atom.terms) if term == variable]
    bound = _probe_pattern(atom, binding)
    values: Set[Value] = set()
    for fact in index.probe(atom.relation, bound):
        position_values = {fact.args[i] for i in positions}
        if len(position_values) == 1:
            values.add(position_values.pop())
    return values


def _candidate_values(
    subquery: Union[ConjunctiveQuery, UnionOfConjunctiveQueries],
    variable: Variable,
    index: FactIndex,
    binding: Binding,
) -> List[Value]:
    """Values worth grounding ``variable`` with, in the shared
    :func:`~repro.relational.facts.domain_sort_key` order (consistent
    with the join grounder, so lifted grounding is reproducible across
    backends).  For a CQ the sets from each atom containing the variable
    intersect (the separator occurs in all of them); for a UCQ the
    per-disjunct candidates union.  Values outside give subquery
    probability 0 and contribute nothing to the independent project."""
    if isinstance(subquery, UnionOfConjunctiveQueries):
        union: Set[Value] = set()
        for cq in subquery.disjuncts:
            union |= _cq_candidates(cq, variable, index, binding)
        return sorted(union, key=domain_sort_key)
    return sorted(
        _cq_candidates(subquery, variable, index, binding),
        key=domain_sort_key,
    )


def _cq_candidates(
    cq: ConjunctiveQuery,
    variable: Variable,
    index: FactIndex,
    binding: Binding,
) -> Set[Value]:
    candidate_sets: List[Set[Value]] = []
    for atom in cq.atoms:
        if variable not in {t for t in atom.terms if isinstance(t, Variable)}:
            continue
        candidate_sets.append(
            _atom_candidates(atom, variable, index, binding))
    if not candidate_sets:
        return set()
    return set.intersection(*candidate_sets)


def _plan_atoms(plan: SafePlan) -> Iterator[Atom]:
    """All atoms a plan subtree can touch — leaves, plus project scopes
    (a project's child only narrows its scope, so the scope's atoms are
    a safe superset)."""
    if isinstance(plan, FactLeaf):
        yield plan.atom
    elif isinstance(plan, (IndependentJoin, IndependentUnion)):
        for child in plan.children:
            yield from _plan_atoms(child)
    elif isinstance(plan, IndependentProject):
        yield from _scope_atoms(plan.subquery)
    elif isinstance(plan, InclusionExclusion):
        for _, term in plan.terms:
            yield from _plan_atoms(term)
    elif isinstance(plan, UnsafeLeaf):
        yield from _scope_atoms(plan.subquery)
    else:  # pragma: no cover - defensive
        raise EvaluationError(f"unknown plan node {plan!r}")


def _scope_atoms(
    scope: Union[ConjunctiveQuery, UnionOfConjunctiveQueries]
) -> Iterator[Atom]:
    if isinstance(scope, UnionOfConjunctiveQueries):
        for cq in scope.disjuncts:
            yield from cq.atoms
    else:
        yield from scope.atoms


class _PlanEvaluator:
    """Interprets a safe plan against one table via a binding
    environment; all data access goes through the table's
    :class:`~repro.relational.index.FactIndex`."""

    __slots__ = ("table", "index", "is_bid", "unsafe_fallback")

    def __init__(
        self,
        table: LiftedTable,
        index: FactIndex,
        unsafe_fallback: Optional[Callable[[Formula], float]] = None,
    ):
        self.table = table
        self.index = index
        self.is_bid = isinstance(table, BlockIndependentTable)
        self.unsafe_fallback = unsafe_fallback

    def run(self, plan: SafePlan) -> float:
        return self._eval(plan, {})

    # ------------------------------------------------------------- dispatch
    def _eval(self, plan: SafePlan, binding: Binding) -> float:
        if isinstance(plan, FactLeaf):
            return self.table.marginal(_ground_fact(plan.atom, binding))
        if isinstance(plan, IndependentJoin):
            return self._eval_join(plan, binding)
        if isinstance(plan, IndependentUnion):
            return self._eval_union(plan, binding)
        if isinstance(plan, IndependentProject):
            return self._eval_project(plan, binding)
        if isinstance(plan, InclusionExclusion):
            return sum(
                coefficient * self._eval(term, binding)
                for coefficient, term in plan.terms
            )
        if isinstance(plan, UnsafeLeaf):
            if self.unsafe_fallback is None:
                raise UnsafeQueryError(
                    f"plan contains an unsafe residue: {plan.subquery!r}",
                    subquery=plan.subquery,
                )
            return float(self.unsafe_fallback(plan.formula()))
        raise EvaluationError(f"unknown plan node {plan!r}")

    # ------------------------------------------------------------ operators
    def _eval_join(self, plan: IndependentJoin, binding: Binding) -> float:
        if self.is_bid:
            self._require_disjoint_blocks(
                plan.children, binding, "independent join"
            )
        probability = 1.0
        for child in plan.children:
            probability *= self._eval(child, binding)
            if probability == 0.0:
                return 0.0
        return probability

    def _eval_union(self, plan: IndependentUnion, binding: Binding) -> float:
        if self.is_bid and not self._blocks_disjoint(plan.children, binding):
            if all(isinstance(c, FactLeaf) for c in plan.children):
                facts = [
                    _ground_fact(c.atom, binding) for c in plan.children
                ]
                return self._disjoint_union(facts)
            raise UnsafeQueryError(
                "BID blocks overlap across union branches; the "
                "independent-union rule does not apply"
            )
        # Log-space complement accumulation (utils.probability): the
        # naive ``complement *= 1.0 - p`` loop silently drops children
        # below one ulp of 0 and underflows past ~1e-308.
        acc = ComplementAccumulator()
        for child in plan.children:
            acc.add(self._eval(child, binding))
            if acc.is_zero:
                return 1.0
        return acc.disjunction()

    def _eval_project(
        self, plan: IndependentProject, binding: Binding
    ) -> float:
        if not self.is_bid and isinstance(plan.child, FactLeaf):
            fast = self._project_leaf_fast(plan, binding)
            if fast is not None:
                return fast
        values = _candidate_values(
            plan.subquery, plan.variable, self.index, binding)
        bindings = [
            {**binding, plan.variable: value} for value in values
        ]
        if self.is_bid and not self._bindings_disjoint(plan.child, bindings):
            if isinstance(plan.child, FactLeaf):
                facts = [
                    _ground_fact(plan.child.atom, b) for b in bindings
                ]
                return self._disjoint_union(facts)
            raise UnsafeQueryError(
                "BID blocks overlap across project values; the "
                "independent-project rule does not apply"
            )
        acc = ComplementAccumulator()
        for child_binding in bindings:
            acc.add(self._eval(plan.child, child_binding))
            if acc.is_zero:
                return 1.0
        return acc.disjunction()

    def _project_leaf_fast(
        self, plan: IndependentProject, binding: Binding
    ) -> Optional[float]:
        """Columnar independent project over a single-atom leaf (TI
        tables): one index probe returns the matching row ids, the
        marginal column serves the slice, and the fold runs without
        per-candidate binding dicts, fact grounding, or recursion.

        Folds in the same ``domain_sort_key`` candidate order as the
        generic path, so results stay bit-identical (and deterministic
        across hash seeds).  Returns None when the leaf's atom has free
        variables besides the project variable — the generic path
        handles those.
        """
        atom = plan.child.atom
        variable = plan.variable
        positions: List[int] = []
        for i, term in enumerate(atom.terms):
            if term == variable:
                positions.append(i)
            elif isinstance(term, Constant) or term in binding:
                continue
            else:
                return None
        if not positions:
            return None
        rows = self.index.probe_rows(
            atom.relation, _probe_pattern(atom, binding))
        if not rows:
            return 0.0
        column = self.index.marginal_column(self.table)
        fact_at = self.index.fact_at
        first, rest = positions[0], positions[1:]
        pairs = []
        for row in rows:
            args = fact_at(row).args
            value = args[first]
            if any(args[i] != value for i in rest):
                continue  # repeated positions disagree: no candidate
            pairs.append((domain_sort_key(value), row))
        pairs.sort()
        acc = ComplementAccumulator()
        for _, row in pairs:
            acc.add(column[row])
            if acc.is_zero:
                return 1.0
        return acc.disjunction()

    # ------------------------------------------------------- BID machinery
    def _touched_blocks(self, plan: SafePlan, binding: Binding) -> Set[str]:
        """Names of every block a subtree can read under ``binding`` —
        a superset, derived by probing each reachable atom's bound
        columns."""
        names: Set[str] = set()
        assert isinstance(self.table, BlockIndependentTable)
        for atom in _plan_atoms(plan):
            bound = _probe_pattern(atom, binding)
            for fact in self.index.probe(atom.relation, bound):
                block = self.table.block_of(fact)
                if block is not None:
                    names.add(block.name)
        return names

    def _blocks_disjoint(self, children, binding: Binding) -> bool:
        seen: Set[str] = set()
        for child in children:
            touched = self._touched_blocks(child, binding)
            if touched & seen:
                return False
            seen |= touched
        return True

    def _bindings_disjoint(self, child: SafePlan, bindings) -> bool:
        seen: Set[str] = set()
        for child_binding in bindings:
            touched = self._touched_blocks(child, child_binding)
            if touched & seen:
                return False
            seen |= touched
        return True

    def _require_disjoint_blocks(
        self, children, binding: Binding, rule: str
    ) -> None:
        if not self._blocks_disjoint(children, binding):
            raise UnsafeQueryError(
                f"BID blocks overlap across {rule} operands; the plan's "
                "independence assumption fails on this table"
            )

    def _disjoint_union(self, facts) -> float:
        """``P(∨ facts)`` when the facts may share blocks: within a
        block alternatives are mutually exclusive (masses add), across
        blocks independent."""
        assert isinstance(self.table, BlockIndependentTable)
        per_block: Dict[str, float] = {}
        seen: Set[Fact] = set()
        for fact in facts:
            if fact in seen:
                continue
            seen.add(fact)
            block = self.table.block_of(fact)
            if block is None:
                continue  # impossible fact: contributes 0
            mass = per_block.get(block.name, 0.0) + block.probability(fact)
            per_block[block.name] = mass
        acc = ComplementAccumulator()
        for mass in per_block.values():
            acc.add(min(1.0, mass))
            if acc.is_zero:
                return 1.0
        return acc.disjunction()


def evaluate_plan(plan: SafePlan, table: LiftedTable) -> float:
    """Evaluate a compiled :class:`SafePlan` on a TI (or BID) table.

    Builds a fresh :class:`~repro.relational.index.FactIndex` over the
    table's possible facts; callers evaluating one query family across
    growing truncations should go through
    :func:`query_probability_lifted`, which reuses a delta-extended
    index and caches plans.

    >>> from repro.relational import Schema
    >>> from repro.logic.syntax import Atom, Variable
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
    >>> plan = safe_plan(ConjunctiveQuery([Atom(R, (Variable("x"),))]))
    >>> round(evaluate_plan(plan, table), 10)
    0.75
    """
    if not isinstance(
        table, (TupleIndependentTable, BlockIndependentTable)
    ):
        raise EvaluationError("lifted evaluation needs a TI or BID table")
    index = FactIndex(table.facts())
    return _PlanEvaluator(table, index).run(plan)


def query_probability_lifted(
    query: BooleanQuery,
    table: LiftedTable,
    plan_cache=None,
    partial: bool = False,
    unsafe_fallback: Optional[Callable[[Formula], float]] = None,
) -> float:
    """Exact ``P(Q)`` via safe plans, or :class:`UnsafeQueryError`.

    The query must be (equivalent to) a Boolean UCQ with a safe plan
    under the Dalvi–Suciu rules of :mod:`repro.logic.hierarchy` — the
    error of an unsafe query carries the minimal offending subquery as
    ``exc.subquery``.

    ``plan_cache`` is a :class:`~repro.finite.compile_cache.CompileCache`
    (defaulting to the process-wide one): plans are compiled once per
    query family, the family's fact index is delta-extended across
    growing truncations, and cache traffic shows up in the
    ``lifted.plans`` / ``lifted.plan_cache_hits`` counters.

    With ``partial=True`` an unsafe query still evaluates if some
    top-level components are safe: the unsafe residue components are
    delegated to ``unsafe_fallback(formula)`` (required in that case by
    evaluation time); a wholly unsafe query raises even in partial mode.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1, 1): 0.5, R(2, 1): 0.4})
    >>> q = BooleanQuery(parse_formula("EXISTS x, y. R(x, y)", schema), schema)
    >>> round(query_probability_lifted(q, table), 10)
    0.7
    """
    if not isinstance(
        table, (TupleIndependentTable, BlockIndependentTable)
    ):
        raise EvaluationError("lifted evaluation needs a TI or BID table")
    from repro.finite.compile_cache import DEFAULT_COMPILE_CACHE

    cache = plan_cache if plan_cache is not None else DEFAULT_COMPILE_CACHE
    plan, index = cache.lifted(query.formula, table, partial=partial)
    return _PlanEvaluator(table, index, unsafe_fallback).run(plan)

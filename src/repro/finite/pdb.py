"""Finite probabilistic databases as explicit world tables.

A finite PDB is a probability distribution over finitely many instances
of the same schema (the standard model, paper §3 intro).  This explicit
representation is the ground truth everything else is validated against:
tuple-independent and BID tables expand to it, and every query evaluator
must agree with exhaustive evaluation on it.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import ProbabilityError
from repro.measure.space import DiscreteProbabilitySpace
from repro.relational.facts import Fact
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.utils.rationals import as_fraction


class FinitePDB:
    """An explicit finite probability space over database instances.

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> pdb = FinitePDB(schema, {Instance([R(1)]): 0.4, Instance(): 0.6})
    >>> pdb.fact_marginal(R(1))
    0.4
    >>> pdb.expected_size()
    0.4
    """

    def __init__(
        self,
        schema: Schema,
        worlds: Mapping[Instance, float],
        tolerance: float = 1e-9,
    ):
        self.schema = schema
        total = 0.0
        cleaned: Dict[Instance, float] = {}
        for instance, mass in worlds.items():
            if mass < -tolerance:
                raise ProbabilityError(f"negative world probability {mass}")
            instance.validate_schema(schema)
            cleaned[instance] = cleaned.get(instance, 0.0) + max(mass, 0.0)
            total += max(mass, 0.0)
        if abs(total - 1.0) > tolerance:
            raise ProbabilityError(f"world probabilities sum to {total}, not 1")
        self.worlds: Dict[Instance, float] = cleaned

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.worlds)

    def instances(self) -> Iterator[Instance]:
        return iter(sorted(self.worlds, key=Instance.sort_key))

    def probability_of(self, instance: Instance) -> float:
        """``P({D})``."""
        return self.worlds.get(instance, 0.0)

    def probability(self, event: Callable[[Instance], bool]) -> float:
        """``P({D : event(D)})`` by exhaustive summation."""
        return sum(
            mass for instance, mass in self.worlds.items() if event(instance)
        )

    def fact_marginal(self, fact: Fact) -> float:
        """``P(E_f)`` — the probability that ``fact`` occurs."""
        return self.probability(lambda instance: fact in instance)

    def facts(self) -> Set[Fact]:
        """``F(D)``: all facts appearing in some instance (any mass)."""
        found: Set[Fact] = set()
        for instance in self.worlds:
            found |= instance.facts
        return found

    def expected_size(self) -> float:
        """``E(S_D) = Σ_D P({D}) ‖D‖`` (paper §3.2 eq. (5))."""
        return sum(mass * instance.size for instance, mass in self.worlds.items())

    def size_distribution(self) -> Dict[int, float]:
        """``P(S_D = n)`` for every attained size n."""
        dist: Dict[int, float] = {}
        for instance, mass in self.worlds.items():
            dist[instance.size] = dist.get(instance.size, 0.0) + mass
        return dist

    def as_space(self) -> DiscreteProbabilitySpace:
        """View as a generic discrete probability space."""
        return DiscreteProbabilitySpace.from_dict(dict(self.worlds))

    # ---------------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> Instance:
        u = rng.random()
        acc = 0.0
        last: Optional[Instance] = None
        for instance in self.instances():
            acc += self.worlds[instance]
            last = instance
            if u < acc:
                return instance
        if last is None:
            raise ProbabilityError("empty PDB")
        return last

    def sample_batch(
        self,
        n: int,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        backend: str = "auto",
        batch_index: int = 0,
    ) -> List[Instance]:
        """Draw ``n`` worlds at once with a :mod:`repro.sampling` kernel.

        The batched path builds the sorted cumulative world table once
        instead of re-sorting per draw; ``backend="scalar"`` keeps the
        per-draw :meth:`sample` loop.
        """
        if backend == "scalar":
            if rng is None:
                if seed is None:
                    raise ValueError("provide rng= or seed=")
                rng = random.Random(seed)
            return [self.sample(rng) for _ in range(n)]
        from repro.sampling import sample_instances

        return sample_instances(
            self, n, rng=rng, seed=seed, backend=backend,
            batch_index=batch_index,
        )

    # ------------------------------------------------------------ conditioning
    def condition(self, event: Callable[[Instance], bool]) -> "FinitePDB":
        """``P(· | event)`` — used to verify the completion condition."""
        mass = self.probability(event)
        if mass <= 0:
            raise ProbabilityError("conditioning on a null event")
        return FinitePDB(
            self.schema,
            {
                instance: p / mass
                for instance, p in self.worlds.items()
                if event(instance)
            },
        )

    # ------------------------------------------------------------------ exact
    def exact_worlds(self) -> Dict[Instance, Fraction]:
        """World probabilities as exact fractions (of the stored floats)."""
        return {
            instance: as_fraction(mass) for instance, mass in self.worlds.items()
        }

    def __repr__(self) -> str:
        return f"FinitePDB(worlds={len(self.worlds)}, schema={self.schema!r})"

"""Monte-Carlo query evaluation with confidence intervals.

The sampling fallback for queries outside every exact engine's reach
(non-hierarchical with large lineage), and the E8 ablation baseline:
its error decays as ``n^{−1/2}`` while exact engines are exact.
"""

from __future__ import annotations

import math
import random
from typing import Callable, NamedTuple, Union

from repro.finite.bid import BlockIndependentTable
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.queries import BooleanQuery
from repro.relational.instance import Instance

Samplable = Union[FinitePDB, TupleIndependentTable, BlockIndependentTable]


class MonteCarloEstimate(NamedTuple):
    """A point estimate with a normal-approximation confidence interval."""

    estimate: float
    samples: int
    #: Half-width of the confidence interval at the requested level.
    half_width: float

    @property
    def low(self) -> float:
        return max(0.0, self.estimate - self.half_width)

    @property
    def high(self) -> float:
        return min(1.0, self.estimate + self.half_width)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


#: Standard normal quantiles for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def query_probability_monte_carlo(
    query: BooleanQuery,
    pdb: Samplable,
    samples: int,
    rng: random.Random,
    confidence: float = 0.95,
) -> MonteCarloEstimate:
    """Estimate ``P(Q)`` by sampling worlds and model checking.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> est = query_probability_monte_carlo(q, table, 2000, random.Random(1))
    >>> est.contains(0.5)
    True
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    z = _Z.get(confidence)
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence}")
    hits = 0
    for _ in range(samples):
        world = pdb.sample(rng)
        if query.holds_in(world):
            hits += 1
    estimate = hits / samples
    # Wald interval with a continuity floor to avoid zero width at 0/1.
    variance = max(estimate * (1.0 - estimate), 1.0 / samples)
    half_width = z * math.sqrt(variance / samples)
    return MonteCarloEstimate(estimate, samples, half_width)


def event_probability_monte_carlo(
    event: Callable[[Instance], bool],
    pdb: Samplable,
    samples: int,
    rng: random.Random,
    confidence: float = 0.95,
) -> MonteCarloEstimate:
    """Like :func:`query_probability_monte_carlo` for arbitrary events."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    z = _Z.get(confidence)
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence}")
    hits = sum(1 for _ in range(samples) if event(pdb.sample(rng)))
    estimate = hits / samples
    variance = max(estimate * (1.0 - estimate), 1.0 / samples)
    half_width = z * math.sqrt(variance / samples)
    return MonteCarloEstimate(estimate, samples, half_width)

"""Monte-Carlo query evaluation with confidence intervals.

The sampling fallback for queries outside every exact engine's reach
(non-hierarchical with large lineage), and the E8 ablation baseline:
its error decays as ``n^{−1/2}`` while exact engines are exact.

Sampling runs on the batched kernels of :mod:`repro.sampling` by
default (``backend="auto"``): the representation is compiled to a plan
once, worlds are generated ``batch_size`` at a time, and model checking
is memoised per distinct world.  ``backend="scalar"`` preserves the
original one-draw-at-a-time loop as the differential-testing reference.
"""

from __future__ import annotations

import math
import random
from statistics import NormalDist
from typing import Callable, NamedTuple, Optional, Union

from repro import obs
from repro.finite.bid import BlockIndependentTable
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.queries import BooleanQuery
from repro.relational.instance import Instance
from repro.sampling import DEFAULT_BATCH_SIZE, batch_rngs, get_kernel, plan_for

Samplable = Union[FinitePDB, TupleIndependentTable, BlockIndependentTable]


class MonteCarloEstimate(NamedTuple):
    """A point estimate with a normal-approximation confidence interval."""

    estimate: float
    samples: int
    #: Half-width of the confidence interval at the requested level.
    half_width: float

    @property
    def low(self) -> float:
        return max(0.0, self.estimate - self.half_width)

    @property
    def high(self) -> float:
        return min(1.0, self.estimate + self.half_width)

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


#: Pre-tabulated standard normal quantiles for the common levels, kept
#: so long-standing callers see bit-identical half-widths.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_quantile(confidence: float) -> float:
    """Two-sided standard-normal quantile ``Φ⁻¹((1 + confidence)/2)``.

    Accepts any confidence level in ``(0, 1)`` via the inverse-CDF
    rational approximation behind :class:`statistics.NormalDist`.

    >>> round(z_quantile(0.975), 4)
    2.2414
    >>> z_quantile(0.95)
    1.96
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    z = _Z.get(confidence)
    if z is None:
        z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    return z


def _wald_estimate(hits: int, samples: int, z: float) -> MonteCarloEstimate:
    estimate = hits / samples
    # Wald interval with a continuity floor to avoid zero width at 0/1.
    variance = max(estimate * (1.0 - estimate), 1.0 / samples)
    std_error = math.sqrt(variance / samples)
    half_width = z * std_error
    obs.incr("sampling.samples", samples)
    obs.gauge_max("sampling.half_width", half_width)
    obs.gauge_max("sampling.std_error", std_error)
    return MonteCarloEstimate(estimate, samples, half_width)


def _batched_hits(
    check_row: Callable,
    plan,
    samples: int,
    kernel,
    rng,
    seed,
    batch_size: int,
) -> int:
    rng_for = batch_rngs(kernel, rng=rng, seed=seed)
    hits = 0
    done = 0
    batch_index = 0
    while done < samples:
        k = min(batch_size, samples - done)
        for row in plan.sample_rows(kernel, k, rng_for(batch_index)):
            if check_row(row):
                hits += 1
        done += k
        batch_index += 1
    obs.incr("sampling.batches", batch_index)
    return hits


def query_probability_monte_carlo(
    query: BooleanQuery,
    pdb: Samplable,
    samples: int,
    rng: Optional[random.Random] = None,
    confidence: float = 0.95,
    backend: str = "auto",
    seed: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MonteCarloEstimate:
    """Estimate ``P(Q)`` by sampling worlds and model checking.

    Randomness comes from either a caller ``rng`` (consumed
    sequentially) or a ``seed`` (every batch reproducible from
    ``(seed, batch_index)``); exactly one is required.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> table = TupleIndependentTable(schema, {R(1): 0.5})
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> est = query_probability_monte_carlo(q, table, 2000, seed=1)
    >>> est.contains(0.5)
    True
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    z = z_quantile(confidence)
    with obs.trace() as t:
        obs.note(strategy=f"monte-carlo[{backend}]")
        with obs.phase("sample"):
            if backend == "scalar":
                if rng is None:
                    if seed is None:
                        raise ValueError("provide rng= or seed=")
                    rng = random.Random(seed)
                hits = 0
                for _ in range(samples):
                    world = pdb.sample(rng)
                    if query.holds_in(world):
                        hits += 1
            else:
                kernel = get_kernel(backend)
                plan = plan_for(pdb)
                hits = _batched_hits(
                    plan.model_checker(query), plan, samples, kernel, rng,
                    seed, batch_size,
                )
        estimate = _wald_estimate(hits, samples, z)
    return obs.attach_report(estimate, obs.EvalReport.from_trace(t))


def event_probability_monte_carlo(
    event: Callable[[Instance], bool],
    pdb: Samplable,
    samples: int,
    rng: Optional[random.Random] = None,
    confidence: float = 0.95,
    backend: str = "auto",
    seed: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> MonteCarloEstimate:
    """Like :func:`query_probability_monte_carlo` for arbitrary events.

    ``event`` must be a deterministic predicate on instances: the
    batched backends memoise its value per distinct sampled world.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    z = z_quantile(confidence)
    with obs.trace() as t:
        obs.note(strategy=f"monte-carlo[{backend}]")
        with obs.phase("sample"):
            if backend == "scalar":
                if rng is None:
                    if seed is None:
                        raise ValueError("provide rng= or seed=")
                    rng = random.Random(seed)
                hits = sum(
                    1 for _ in range(samples) if event(pdb.sample(rng)))
            else:
                kernel = get_kernel(backend)
                plan = plan_for(pdb)
                hits = _batched_hits(
                    plan.event_checker(event), plan, samples, kernel, rng,
                    seed, batch_size,
                )
        estimate = _wald_estimate(hits, samples, z)
    return obs.attach_report(estimate, obs.EvalReport.from_trace(t))

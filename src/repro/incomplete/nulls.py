"""Incomplete databases: facts with labelled nulls.

The classical Imieliński–Lipski model restricted to what Example 3.2 of
the paper needs: tuples whose unknown positions carry named nulls ``⊥ₓ``;
substituting values for the nulls yields ordinary facts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set, Tuple, Union

from repro.errors import SchemaError
from repro.relational.facts import Fact, Value
from repro.relational.instance import Instance
from repro.relational.schema import RelationSymbol, Schema


class Null:
    """A labelled null ``⊥ₓ``; nulls with the same label corefer.

    >>> Null("h") == Null("h")
    True
    """

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __hash__(self) -> int:
        return hash(("null", self.label))

    def __repr__(self) -> str:
        return f"Null({self.label!r})"

    def __str__(self) -> str:
        return f"⊥{self.label}"


MaybeValue = Union[Value, Null]


class IncompleteFact:
    """A fact whose arguments may be nulls.

    >>> R = RelationSymbol("R", 2)
    >>> f = IncompleteFact(R, ("Grohe", Null("h")))
    >>> sorted(n.label for n in f.nulls())
    ['h']
    >>> f.substitute({Null("h"): 183})
    Fact(R('Grohe', 183))
    """

    __slots__ = ("relation", "args")

    def __init__(self, relation: RelationSymbol, args: Iterable[MaybeValue]):
        args = tuple(args)
        if len(args) != relation.arity:
            raise SchemaError(
                f"relation {relation} expects {relation.arity} arguments"
            )
        self.relation = relation
        self.args: Tuple[MaybeValue, ...] = args

    def nulls(self) -> FrozenSet[Null]:
        return frozenset(a for a in self.args if isinstance(a, Null))

    @property
    def is_complete(self) -> bool:
        return not self.nulls()

    def substitute(self, valuation: Mapping[Null, Value]) -> "FactOrIncomplete":
        """Replace nulls by values; returns a ground :class:`Fact` when
        every null is covered, else a partially substituted copy."""
        new_args: List[MaybeValue] = []
        for arg in self.args:
            if isinstance(arg, Null) and arg in valuation:
                new_args.append(valuation[arg])
            else:
                new_args.append(arg)
        if any(isinstance(a, Null) for a in new_args):
            return IncompleteFact(self.relation, new_args)
        return Fact(self.relation, new_args)  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IncompleteFact)
            and self.relation == other.relation
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.args))

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"IncompleteFact({self.relation.name}({inner}))"


FactOrIncomplete = Union[Fact, IncompleteFact]


class IncompleteInstance:
    """A finite set of (possibly incomplete) facts.

    >>> R = RelationSymbol("R", 2)
    >>> db = IncompleteInstance([
    ...     IncompleteFact(R, ("Grohe", Null("h"))),
    ...     IncompleteFact(R, ("Lindner", 178)),
    ... ])
    >>> sorted(n.label for n in db.nulls())
    ['h']
    """

    def __init__(self, facts: Iterable[FactOrIncomplete]):
        normalized: List[FactOrIncomplete] = []
        for fact in facts:
            if isinstance(fact, Fact):
                normalized.append(fact)
            elif isinstance(fact, IncompleteFact):
                if fact.is_complete:
                    normalized.append(Fact(fact.relation, fact.args))  # type: ignore[arg-type]
                else:
                    normalized.append(fact)
            else:
                raise SchemaError(f"not a fact: {fact!r}")
        self.facts: Tuple[FactOrIncomplete, ...] = tuple(normalized)

    def nulls(self) -> FrozenSet[Null]:
        found: Set[Null] = set()
        for fact in self.facts:
            if isinstance(fact, IncompleteFact):
                found |= fact.nulls()
        return frozenset(found)

    def substitute(self, valuation: Mapping[Null, Value]) -> "IncompleteInstance":
        return IncompleteInstance(
            fact.substitute(valuation) if isinstance(fact, IncompleteFact) else fact
            for fact in self.facts
        )

    def to_instance(self) -> Instance:
        """Ground completion → :class:`Instance`; raises if nulls remain."""
        remaining = self.nulls()
        if remaining:
            raise SchemaError(
                f"instance still contains nulls: "
                f"{sorted(n.label for n in remaining)}"
            )
        return Instance(fact for fact in self.facts if isinstance(fact, Fact))

    def __len__(self) -> int:
        return len(self.facts)

    def __repr__(self) -> str:
        return f"IncompleteInstance(facts={len(self.facts)}, nulls={len(self.nulls())})"

"""Probabilistic completion of incomplete databases (Example 3.2).

Each null gets an independent :class:`ValueDistribution`; the induced
PDB over ground completions is their product, realized as a
:class:`~repro.core.pdb.CountablePDB` (countable when every distribution
is discrete — continuous attributes are discretized first, which is the
library's substitution for the paper's uncountable normal-distribution
completion; see DESIGN.md).

Example 3.2's two flavours are covered:

* a numeric null completed from a (discretized) normal distribution of
  heights, and
* a string null completed from a name-frequency list *plus* a decaying
  open-world tail over all other strings ("a small positive probability
  to all strings not occurring in the list, decaying with increasing
  length").
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.pdb import CountablePDB
from repro.errors import ProbabilityError
from repro.incomplete.nulls import IncompleteInstance, Null
from repro.relational.facts import Value
from repro.relational.schema import Schema
from repro.universe.strings import StringUniverse
from repro.utils.enumeration import diagonal_product
from repro.utils.rationals import validate_probability


class ValueDistribution:
    """A discrete distribution over completion values for one null."""

    def masses(self) -> Iterator[Tuple[Value, float]]:
        """Enumerate (value, mass), distinct values, mass sum → 1."""
        raise NotImplementedError

    @property
    def exhaustive(self) -> bool:
        """True iff the enumeration is finite."""
        raise NotImplementedError


class DiscreteValues(ValueDistribution):
    """An explicit finite value distribution.

    >>> d = DiscreteValues({180: 0.5, 183: 0.5})
    >>> sorted(v for v, _ in d.masses())
    [180, 183]
    """

    def __init__(self, masses: Mapping[Value, float]):
        total = 0.0
        cleaned: Dict[Value, float] = {}
        for value, mass in masses.items():
            validate_probability(mass, what=f"mass of {value!r}")
            if mass > 0:
                cleaned[value] = float(mass)
                total += mass
        if abs(total - 1.0) > 1e-9:
            raise ProbabilityError(f"value masses sum to {total}, not 1")
        self._masses = cleaned

    def masses(self) -> Iterator[Tuple[Value, float]]:
        return iter(sorted(self._masses.items(), key=lambda kv: repr(kv[0])))

    @property
    def exhaustive(self) -> bool:
        return True


class DiscretizedContinuous(ValueDistribution):
    """A continuous density discretized onto a finite grid — the
    library's stand-in for Example 3.2's normal-distribution height
    (substitution documented in DESIGN.md: the paper's uncountable
    completion is approximated by a countable one at grid resolution).

    >>> normal = DiscretizedContinuous.normal(
    ...     mean=180.0, std=7.0, low=150.0, high=210.0, bins=60)
    >>> abs(sum(m for _, m in normal.masses()) - 1.0) < 1e-9
    True
    """

    def __init__(self, grid: Sequence[float], weights: Sequence[float]):
        if len(grid) != len(weights):
            raise ProbabilityError("grid and weights must have equal length")
        total = sum(weights)
        if total <= 0:
            raise ProbabilityError("weights must have positive total")
        self._masses = [
            (float(value), weight / total)
            for value, weight in zip(grid, weights)
            if weight > 0
        ]

    @classmethod
    def normal(
        cls, mean: float, std: float, low: float, high: float, bins: int
    ) -> "DiscretizedContinuous":
        """Gaussian density sampled at bin midpoints and renormalized."""
        if bins < 1 or std <= 0 or high <= low:
            raise ProbabilityError("invalid discretization parameters")
        width = (high - low) / bins
        grid, weights = [], []
        for i in range(bins):
            midpoint = low + (i + 0.5) * width
            grid.append(midpoint)
            z = (midpoint - mean) / std
            weights.append(math.exp(-0.5 * z * z))
        return cls(grid, weights)

    def masses(self) -> Iterator[Tuple[Value, float]]:
        return iter(self._masses)

    @property
    def exhaustive(self) -> bool:
        return True


class StringFrequencyValues(ValueDistribution):
    """Example 3.2's name distribution: a frequency list over known
    strings, plus mass ``unseen_mass`` spread over all *other* strings of
    the universe with geometrically decaying weights by enumeration rank.

    >>> d = StringFrequencyValues({"Peter": 0.6, "Martin": 0.3},
    ...                           unseen_mass=0.1,
    ...                           universe=StringUniverse("ab"))
    >>> d.exhaustive
    False
    >>> known = dict(itertools.islice(d.masses(), 2))
    >>> known["Peter"]
    0.6
    """

    def __init__(
        self,
        frequencies: Mapping[str, float],
        unseen_mass: float,
        universe: StringUniverse,
        decay: float = 0.5,
    ):
        validate_probability(unseen_mass, what="unseen mass")
        if not 0 < decay < 1:
            raise ProbabilityError(f"decay must be in (0, 1), got {decay}")
        known_total = sum(frequencies.values())
        if abs(known_total + unseen_mass - 1.0) > 1e-9:
            raise ProbabilityError(
                f"known mass {known_total} + unseen {unseen_mass} ≠ 1"
            )
        self._known = {
            name: float(mass) for name, mass in frequencies.items() if mass > 0
        }
        self._unseen_mass = float(unseen_mass)
        self._universe = universe
        self._decay = decay

    def masses(self) -> Iterator[Tuple[Value, float]]:
        # Known names first (descending frequency), then unseen strings
        # with geometric weights normalized to the unseen mass.
        for name, mass in sorted(
            self._known.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            yield name, mass
        if self._unseen_mass <= 0:
            return
        scale = self._unseen_mass * (1 - self._decay)
        weight = scale
        for word in self._universe.enumerate():
            if word in self._known:
                continue
            yield word, weight
            weight *= self._decay

    @property
    def exhaustive(self) -> bool:
        return self._unseen_mass <= 0


def complete_incomplete_instance(
    incomplete: IncompleteInstance,
    distributions: Mapping[Null, ValueDistribution],
    schema: Schema,
) -> CountablePDB:
    """The product completion PDB of Example 3.2.

    Each null is completed independently with its own distribution
    (the paper notes the independence assumption can be inappropriate
    for correlated nulls; callers model correlations by completing a
    joint null whose values are tuples).

    >>> from repro.relational import RelationSymbol
    >>> from repro.incomplete.nulls import IncompleteFact
    >>> schema = Schema.of(Person=2)
    >>> P = schema["Person"]
    >>> db = IncompleteInstance([IncompleteFact(P, ("Lindner", Null("h")))])
    >>> pdb = complete_incomplete_instance(
    ...     db, {Null("h"): DiscreteValues({178: 0.5, 179: 0.5})}, schema)
    >>> round(pdb.fact_marginal(P("Lindner", 178)), 10)
    0.5
    """
    nulls = sorted(incomplete.nulls(), key=lambda n: n.label)
    missing = [n for n in nulls if n not in distributions]
    if missing:
        raise ProbabilityError(
            f"no distribution for nulls {[n.label for n in missing]}"
        )
    exhaustive = all(distributions[n].exhaustive for n in nulls)

    def worlds():
        if not nulls:
            instance = incomplete.to_instance()
            yield instance, 1.0
            return
        streams = [distributions[n].masses() for n in nulls]
        for combo in diagonal_product(*streams):
            valuation = {null: value for null, (value, _) in zip(nulls, combo)}
            mass = 1.0
            for _, m in combo:
                mass *= m
            grounded = incomplete.substitute(valuation).to_instance()
            yield grounded, mass

    return CountablePDB(schema, worlds, exhaustive=exhaustive)

"""Incomplete databases with nulls and their probabilistic completions
(Example 3.2 of the paper).

An incomplete database has tuples with labelled nulls; assigning each
null an independent value distribution induces a probabilistic database
over the completions — countable when the value distributions are
discrete, and handled via discretization when they are continuous (the
height example).
"""

from repro.incomplete.nulls import Null, IncompleteInstance, IncompleteFact
from repro.incomplete.completion import (
    ValueDistribution,
    DiscreteValues,
    DiscretizedContinuous,
    StringFrequencyValues,
    complete_incomplete_instance,
)

__all__ = [
    "Null",
    "IncompleteFact",
    "IncompleteInstance",
    "ValueDistribution",
    "DiscreteValues",
    "DiscretizedContinuous",
    "StringFrequencyValues",
    "complete_incomplete_instance",
]

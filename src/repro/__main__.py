"""Command-line interface: query probabilistic tables from the shell.

Usage::

    python -m repro query TABLE.json "EXISTS x. R(x)" [--epsilon 0.01]
           [--open-world first,ratio] [--sweep E1,E2,...]
           [--strategy auto|worlds|lineage|lifted|bdd|sampled]
           [--stats [human|json]]
    python -m repro marginals TABLE.json "R(x)" [--workers K]
           [--open-world first,ratio] [--epsilon 0.01] [--sweep E1,E2,...]
           [--stats [human|json]]
    python -m repro info TABLE.json
    python -m repro serve [--host H --port P | --stdio] [--snapshot PATH]

``TABLE.json`` is the JSON format of :mod:`repro.io` (kind
``tuple-independent`` or ``block-independent-disjoint``).  With
``--open-world`` the table is first completed (Theorem 5.5) with a
geometric family over its fact space and the query is evaluated by the
Proposition 6.1 truncation algorithm.

``--sweep E1,E2,...`` (open-world only) runs an anytime ε-sweep through
one :class:`repro.core.refine.RefinementSession` — loosest ε first, each
tighter guarantee extending the previous truncation and reusing its
compiled evaluation — and prints one line per ε.

``marginals --workers K`` (K > 1) fans answer tuples out over a
persistent :class:`repro.parallel.pool.ShardPool` of K warm worker
processes; combined with ``--open-world --sweep`` the same workers stay
warm across all sweep steps and only the truncation *delta* is shipped
between steps.

``--stats`` prints the :class:`repro.obs.EvalReport` attached to the
result — chosen strategy, truncation/α, cache and sampling telemetry,
per-phase wall clock — on **stderr**, so stdout stays the bare answer.
``--stats`` alone renders the human layout; ``--stats json`` emits the
machine-readable schema (see ``repro.obs.REPORT_SCHEMA``).

``serve`` starts the long-lived query service (:mod:`repro.serve`):
named refinement sessions with warm compiled state behind a
newline-delimited JSON protocol, over TCP (default) or stdin/stdout
(``--stdio``).  With ``--snapshot PATH`` the server restores session
state from PATH at startup (when the file exists) and writes a final
snapshot on shutdown.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.completion import complete
from repro.core.fact_distribution import GeometricFactDistribution
from repro.errors import ReproError
from repro.finite.evaluation import (
    marginal_answer_probabilities,
    query_probability,
)
from repro.finite.tuple_independent import TupleIndependentTable
from repro.io import load
from repro.logic.analysis import free_variables
from repro.logic.parser import parse_formula
from repro.logic.queries import BooleanQuery, Query
from repro.universe import FactSpace, Naturals


def _load_table(path: str):
    with open(path) as handle:
        return load(handle)


def _emit_stats(result, mode) -> None:
    """Print the EvalReport attached to ``result`` on stderr."""
    if not mode:
        return
    report = getattr(result, "report", None)
    if report is None:
        print("stats: no evaluation report attached", file=sys.stderr)
        return
    if mode == "json":
        print(report.to_json(indent=2), file=sys.stderr)
    else:
        print(report.render(), file=sys.stderr)


def _add_stats_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--stats", nargs="?", const="human", default=None,
        choices=["human", "json"], metavar="FORMAT",
        help="print evaluation telemetry on stderr "
             "(FORMAT: human [default] or json)")


def _parse_open_world(spec: str):
    try:
        first_text, ratio_text = spec.split(",")
        return float(first_text), float(ratio_text)
    except ValueError:
        raise SystemExit(
            f"--open-world expects 'first,ratio', got {spec!r}")


def _parse_sweep(spec: str):
    """The validated sweep schedule of ``--sweep``: floats routed
    through :func:`repro.core.refine.normalize_epsilons`, so non-positive
    epsilons are rejected here (not deep inside the truncation search)
    and duplicates collapse to one refinement."""
    try:
        epsilons = [float(part) for part in spec.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"--sweep expects comma-separated epsilons, got {spec!r}")
    from repro.core.refine import normalize_epsilons
    from repro.errors import EvaluationError

    try:
        return normalize_epsilons(epsilons)
    except EvaluationError as err:
        raise SystemExit(f"--sweep: {err}")


def command_info(args: argparse.Namespace) -> int:
    table = _load_table(args.table)
    kind = type(table).__name__
    print(f"kind          : {kind}")
    print(f"schema        : {table.schema}")
    print(f"facts         : {len(table.facts())}")
    print(f"expected size : {table.expected_size():.6f}")
    for fact in table.facts()[:10]:
        print(f"  {fact} : {table.marginal(fact)}")
    if len(table.facts()) > 10:
        print(f"  … {len(table.facts()) - 10} more")
    return 0


def command_query(args: argparse.Namespace) -> int:
    table = _load_table(args.table)
    formula = parse_formula(args.query, table.schema)
    query = BooleanQuery(formula, table.schema)
    if args.open_world:
        if not isinstance(table, TupleIndependentTable):
            raise SystemExit("--open-world requires a tuple-independent table")
        first, ratio = _parse_open_world(args.open_world)
        completed = complete(
            table,
            GeometricFactDistribution(
                FactSpace(table.schema, Naturals()), first=first, ratio=ratio),
        )
        if args.sweep:
            from repro.core.refine import RefinementSession

            session = RefinementSession(query, completed)
            for epsilon, result in session.sweep(
                    _parse_sweep(args.sweep)).items():
                print(f"P(Q) = {result.value:.6f}  (±{result.epsilon}, "
                      f"truncated at n = {result.truncation} "
                      "open-world facts)")
                _emit_stats(result, args.stats)
        else:
            result = completed.approximate_query_probability(
                query, epsilon=args.epsilon)
            print(f"P(Q) = {result.value:.6f}  (±{result.epsilon}, "
                  f"truncated at n = {result.truncation} open-world facts)")
            _emit_stats(result, args.stats)
    else:
        if args.sweep:
            raise SystemExit("--sweep requires --open-world")
        value = query_probability(query, table, strategy=args.strategy)
        print(f"P(Q) = {value:.6f}  (exact, closed world)")
        _emit_stats(value, args.stats)
    return 0


def command_marginals(args: argparse.Namespace) -> int:
    table = _load_table(args.table)
    formula = parse_formula(args.query, table.schema)
    if not free_variables(formula):
        raise SystemExit("marginals expects a query with free variables; "
                         "use 'query' for Boolean queries")
    query = Query(formula, table.schema)
    workers = args.workers if args.workers and args.workers > 1 else None
    if args.open_world:
        if not isinstance(table, TupleIndependentTable):
            raise SystemExit("--open-world requires a tuple-independent table")
        from repro.core.refine import RefinementSession

        first, ratio = _parse_open_world(args.open_world)
        completed = complete(
            table,
            GeometricFactDistribution(
                FactSpace(table.schema, Naturals()), first=first, ratio=ratio),
        )
        session = RefinementSession(query, completed)
        epsilons = (
            _parse_sweep(args.sweep) if args.sweep else [args.epsilon])
        for epsilon in epsilons:
            results = session.refine_marginals(epsilon, workers=workers)
            for answer, result in results.items():
                print(f"{answer} : {result.value:.6f}  (±{result.epsilon}, "
                      f"truncated at n = {result.truncation} "
                      "open-world facts)")
            if not results:
                print(f"(no answers with positive probability at "
                      f"epsilon = {epsilon})")
            else:
                _emit_stats(next(iter(results.values())), args.stats)
        return 0
    if args.sweep:
        raise SystemExit("--sweep requires --open-world")
    answers = marginal_answer_probabilities(
        query, table, strategy=args.strategy, workers=workers)
    for answer in sorted(answers, key=repr):
        print(f"{answer} : {answers[answer]:.6f}")
    if not answers:
        print("(no answers with positive probability)")
    _emit_stats(answers, args.stats)
    return 0


def command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.serve import QueryServer, SessionManager, load_snapshot

    if args.snapshot and os.path.exists(args.snapshot):
        manager = load_snapshot(args.snapshot)
        print(f"restored {len(manager)} session(s) from {args.snapshot}",
              file=sys.stderr)
    else:
        manager = SessionManager(max_sessions=args.max_sessions)
    server = QueryServer(
        manager=manager, max_workers=args.workers,
        snapshot_path=args.snapshot, shard_workers=args.workers)
    try:
        if args.stdio:
            asyncio.run(server.serve_stdio())
        else:
            def announce(port: int) -> None:
                print(f"serving on {args.host}:{port}", file=sys.stderr,
                      flush=True)

            asyncio.run(
                server.serve_tcp(args.host, args.port, ready=announce))
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query probabilistic tables (closed or open world).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="describe a table file")
    info.add_argument("table")
    info.set_defaults(handler=command_info)

    query = commands.add_parser("query", help="Boolean query probability")
    query.add_argument("table")
    query.add_argument("query")
    query.add_argument("--strategy", default="auto",
                       choices=["auto", "worlds", "lineage", "lifted", "bdd",
                                "sampled"])
    query.add_argument("--open-world", metavar="FIRST,RATIO", default=None,
                       help="complete with a geometric open-world family "
                            "before querying (Theorem 5.5)")
    query.add_argument("--epsilon", type=float, default=0.01,
                       help="additive guarantee for open-world queries")
    query.add_argument("--sweep", metavar="E1,E2,...", default=None,
                       help="anytime epsilon sweep through one refinement "
                            "session (requires --open-world); prints one "
                            "line per epsilon, loosest first")
    _add_stats_flag(query)
    query.set_defaults(handler=command_query)

    marginals = commands.add_parser(
        "marginals", help="per-answer-tuple probabilities")
    marginals.add_argument("table")
    marginals.add_argument("query")
    marginals.add_argument("--strategy", default="auto",
                           choices=["auto", "worlds", "lineage", "lifted",
                                    "bdd", "sampled"])
    marginals.add_argument("--workers", type=int, default=None,
                           help="fan answer tuples out over the persistent "
                                "shard pool (k > 1 worker processes)")
    marginals.add_argument("--open-world", metavar="FIRST,RATIO",
                           default=None,
                           help="complete with a geometric open-world family "
                                "before querying (Theorem 5.5)")
    marginals.add_argument("--epsilon", type=float, default=0.01,
                           help="additive guarantee for open-world marginals")
    marginals.add_argument("--sweep", metavar="E1,E2,...", default=None,
                           help="anytime epsilon sweep through one "
                                "refinement session (requires --open-world); "
                                "the shard pool stays warm across steps")
    _add_stats_flag(marginals)
    marginals.set_defaults(handler=command_marginals)

    serve = commands.add_parser(
        "serve",
        help="long-lived query service (newline-delimited JSON protocol)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7532,
                       help="TCP port (0 picks an ephemeral one)")
    serve.add_argument("--stdio", action="store_true",
                       help="serve one client over stdin/stdout instead "
                            "of TCP")
    serve.add_argument("--snapshot", metavar="PATH", default=None,
                       help="restore session state from PATH at startup "
                            "(if it exists) and snapshot on shutdown")
    serve.add_argument("--max-sessions", type=int, default=16,
                       help="admission-control cap on concurrent sessions")
    serve.add_argument("--workers", type=int, default=4,
                       help="thread-pool size for blocking refinements; "
                            "also sizes the shared shard pool that "
                            "'marginals' requests fan out on")
    serve.set_defaults(handler=command_serve)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Finite universes and unions of universes.

Example 5.7 of the paper uses ``U = {A, B, C, D} ∪ ℕ``; Example 2.4 uses
``Σ* ∪ ℝ``.  :class:`TaggedUnion` interleaves the enumerations of its
parts fairly, so infinite parts do not starve each other.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import UniverseError
from repro.relational.facts import Value
from repro.universe.base import Universe


class FiniteUniverse(Universe):
    """An explicitly listed finite universe.

    >>> u = FiniteUniverse(["A", "B", "C"])
    >>> u.rank("B"), len(u)
    (1, 3)
    """

    finite = True

    def __init__(self, values: Sequence[Value]):
        values = tuple(values)
        if len(set(values)) != len(values):
            raise UniverseError("finite universe values must be distinct")
        self.values = values
        self._rank = {v: i for i, v in enumerate(values)}

    def enumerate(self) -> Iterator[Value]:
        return iter(self.values)

    def __contains__(self, value: object) -> bool:
        try:
            return value in self._rank
        except TypeError:
            return False

    def rank(self, value: Value) -> int:
        try:
            return self._rank[value]
        except KeyError:
            raise UniverseError(f"{value!r} not in {self!r}") from None

    def unrank(self, index: int) -> Value:
        if not 0 <= index < len(self.values):
            raise UniverseError(f"rank {index} out of range")
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"FiniteUniverse({list(self.values)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FiniteUniverse) and self.values == other.values

    def __hash__(self) -> int:
        return hash(("FiniteUniverse", self.values))


class TaggedUnion(Universe):
    """The union of several universes with *disjoint* value sets.

    Enumeration interleaves the parts round-robin: finite parts are
    exhausted and dropped, infinite parts keep contributing.  Membership
    and ranks delegate to the first part containing a value; the caller
    must ensure the parts are disjoint as value sets (e.g. strings vs
    integers), which is checked lazily on rank collisions only.

    >>> from repro.universe.naturals import Naturals
    >>> u = TaggedUnion([FiniteUniverse(["A", "B"]), Naturals()])
    >>> u.prefix(6)
    ['A', 1, 'B', 2, 3, 4]
    >>> u.rank("B"), u.rank(1)
    (2, 1)
    """

    def __init__(self, parts: Sequence[Universe]):
        parts = tuple(parts)
        if not parts:
            raise UniverseError("union of no universes")
        self.parts: Tuple[Universe, ...] = parts
        self.finite = all(part.finite for part in parts)

    def enumerate(self) -> Iterator[Value]:
        iterators = [part.enumerate() for part in self.parts]
        while iterators:
            alive = []
            for iterator in iterators:
                try:
                    yield next(iterator)
                except StopIteration:
                    continue
                alive.append(iterator)
            iterators = alive

    def __contains__(self, value: object) -> bool:
        return any(value in part for part in self.parts)

    def rank(self, value: Value) -> int:
        """Rank in the interleaved enumeration (closed form).

        The element with rank r in part i appears after all elements of
        every part with smaller per-part rank, plus the parts before i in
        the same round — adjusted for finite parts that have dropped out
        of earlier rounds.
        """
        if value not in self:
            raise UniverseError(f"{value!r} not in {self!r}")
        part_index = next(
            i for i, part in enumerate(self.parts) if value in part
        )
        inner = self.parts[part_index].rank(value)
        # Elements emitted before (part_index, inner): every part j
        # contributes its first min(|part_j|, inner) elements (rounds
        # 0..inner−1), plus the parts before part_index that are still
        # alive in round `inner`.  O(#parts), independent of the rank.
        position = 0
        for j, part in enumerate(self.parts):
            size = self._part_size(part)
            position += int(min(size, inner))
            if j < part_index and size > inner:
                position += 1
        return position

    @staticmethod
    def _part_size(part: Universe) -> float:
        if part.finite:
            return len(part)
        return float("inf")

    def __repr__(self) -> str:
        return f"TaggedUnion({list(self.parts)!r})"

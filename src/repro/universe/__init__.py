"""Countable universes and fact spaces (paper §3).

A universe U supplies the values that fact arguments range over.  The
infinite-PDB constructions need U to be *computably enumerable* so that
"an algorithm can generate all facts f ∈ F[τ, U]" (paper §6); every
universe here provides a deterministic enumeration and, where possible,
a rank (inverse enumeration) function.
"""

from repro.universe.base import Universe
from repro.universe.naturals import Naturals, IntegerRange
from repro.universe.strings import StringUniverse
from repro.universe.union import TaggedUnion, FiniteUniverse
from repro.universe.product import ProductUniverse
from repro.universe.factspace import FactSpace

__all__ = [
    "Universe",
    "Naturals",
    "IntegerRange",
    "StringUniverse",
    "TaggedUnion",
    "FiniteUniverse",
    "ProductUniverse",
    "FactSpace",
]

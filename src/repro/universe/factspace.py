"""The fact space ``F[τ, U]``: all facts of a schema over a universe.

Enumerated deterministically: per-relation fact streams (arguments in
diagonal product order) interleaved round-robin across relations, exactly
like :class:`~repro.universe.union.TaggedUnion`.  This gives "an
algorithm can generate all facts f ∈ F[τ, U]" (paper §6) together with a
rank function used by decaying fact-probability distributions.

Per-position universes may differ (typed relations à la Example 5.7:
``R ⊆ {A,B,C,D} × ℕ``), via ``position_universes``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError, UniverseError
from repro.relational.facts import Fact, Value
from repro.relational.schema import RelationSymbol, Schema
from repro.universe.base import Universe
from repro.universe.product import ProductUniverse
from repro.universe.union import TaggedUnion


class _RelationFacts(Universe):
    """All facts of a single relation symbol, as a universe of facts."""

    def __init__(self, symbol: RelationSymbol, argument_universes: Sequence[Universe]):
        if len(argument_universes) != symbol.arity:
            raise SchemaError(
                f"{symbol} needs {symbol.arity} argument universes, "
                f"got {len(argument_universes)}"
            )
        self.symbol = symbol
        self.argument_universes = tuple(argument_universes)
        if symbol.arity == 0:
            self.finite = True
            self._product: Optional[ProductUniverse] = None
        else:
            self._product = ProductUniverse(self.argument_universes)
            self.finite = self._product.finite

    def enumerate(self) -> Iterator[Fact]:
        if self._product is None:
            yield Fact(self.symbol, ())
            return
        for args in self._product.enumerate():
            yield Fact(self.symbol, args)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, Fact) or value.relation != self.symbol:
            return False
        if self._product is None:
            return value.args == ()
        return value.args in self._product

    def rank(self, value: Value) -> int:
        if value not in self:
            raise UniverseError(f"{value!r} not a fact of {self.symbol}")
        assert isinstance(value, Fact)
        if self._product is None:
            return 0
        return self._product.rank(value.args)

    def __len__(self) -> int:
        if not self.finite:
            raise UniverseError(f"{self!r} is infinite")
        if self._product is None:
            return 1
        return len(self._product)

    def __repr__(self) -> str:
        return f"_RelationFacts({self.symbol})"


class FactSpace(Universe):
    """``F[τ, U]`` with a deterministic enumeration and rank.

    Parameters
    ----------
    schema:
        The database schema τ.
    universe:
        Default universe for every argument position.
    position_universes:
        Optional per-relation overrides: relation name → sequence of
        per-position universes (the Example 5.7 typing mechanism).

    >>> from repro.universe.naturals import Naturals
    >>> space = FactSpace(Schema.of(R=1, S=1), Naturals())
    >>> [str(f) for f in space.prefix(4)]
    ['R(1)', 'S(1)', 'R(2)', 'S(2)']
    >>> space.rank(space.unrank(7))
    7
    """

    def __init__(
        self,
        schema: Schema,
        universe: Universe,
        position_universes: Optional[Mapping[str, Sequence[Universe]]] = None,
    ):
        self.schema = schema
        self.universe = universe
        overrides: Dict[str, Tuple[Universe, ...]] = {}
        if position_universes:
            for name, universes in position_universes.items():
                overrides[name] = tuple(universes)
        parts = []
        for symbol in schema:
            argument_universes = overrides.get(
                symbol.name, (universe,) * symbol.arity
            )
            parts.append(_RelationFacts(symbol, argument_universes))
        if not parts:
            raise SchemaError("fact space of an empty schema")
        self._parts = tuple(parts)
        self._union = TaggedUnion(parts)
        self.finite = self._union.finite

    def enumerate(self) -> Iterator[Fact]:
        return self._union.enumerate()  # type: ignore[return-value]

    def __contains__(self, value: object) -> bool:
        return value in self._union

    def rank(self, value: Value) -> int:
        return self._union.rank(value)

    def unrank(self, index: int) -> Fact:
        fact = super().unrank(index)
        assert isinstance(fact, Fact)
        return fact

    def __len__(self) -> int:
        return len(self._union)

    def relation_facts(self, name: str) -> Universe:
        """The sub-universe of facts of one relation."""
        for part in self._parts:
            if part.symbol.name == name:
                return part
        raise SchemaError(f"unknown relation {name!r}")

    def __repr__(self) -> str:
        return f"FactSpace({self.schema!r}, {self.universe!r})"

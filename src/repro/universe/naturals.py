"""Integer universes: ℕ (the paper's positive integers) and finite ranges."""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.errors import UniverseError
from repro.relational.facts import Value
from repro.universe.base import Universe


class Naturals(Universe):
    """The positive integers ``ℕ = {1, 2, 3, …}`` (paper §2 convention).

    >>> N = Naturals()
    >>> N.prefix(3)
    [1, 2, 3]
    >>> N.rank(5)
    4
    >>> 0 in N
    False
    """

    finite = False

    def enumerate(self) -> Iterator[Value]:
        return itertools.count(1)

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 1

    def rank(self, value: Value) -> int:
        if value not in self:
            raise UniverseError(f"{value!r} is not a positive integer")
        return int(value) - 1

    def unrank(self, index: int) -> Value:
        if index < 0:
            raise UniverseError(f"rank must be non-negative, got {index}")
        return index + 1

    def __repr__(self) -> str:
        return "Naturals()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Naturals)

    def __hash__(self) -> int:
        return hash("Naturals")


class IntegerRange(Universe):
    """A finite integer range ``[low, high]`` (inclusive).

    >>> r = IntegerRange(3, 5)
    >>> list(r.enumerate())
    [3, 4, 5]
    >>> len(r)
    3
    """

    finite = True

    def __init__(self, low: int, high: int):
        if low > high:
            raise UniverseError(f"empty range [{low}, {high}]")
        self.low = low
        self.high = high

    def enumerate(self) -> Iterator[Value]:
        return iter(range(self.low, self.high + 1))

    def __contains__(self, value: object) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.low <= value <= self.high
        )

    def rank(self, value: Value) -> int:
        if value not in self:
            raise UniverseError(f"{value!r} not in [{self.low}, {self.high}]")
        return int(value) - self.low

    def unrank(self, index: int) -> Value:
        if not 0 <= index < len(self):
            raise UniverseError(f"rank {index} out of range")
        return self.low + index

    def __len__(self) -> int:
        return self.high - self.low + 1

    def __repr__(self) -> str:
        return f"IntegerRange({self.low}, {self.high})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntegerRange)
            and (self.low, self.high) == (other.low, other.high)
        )

    def __hash__(self) -> int:
        return hash(("IntegerRange", self.low, self.high))

"""The universe interface.

A :class:`Universe` is a countable (finite or countably infinite) set
with a fixed enumeration.  The enumeration induces a *rank*: the index of
an element in the enumeration, which downstream fact-probability
distributions use to assign decaying probabilities deterministically.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from repro.errors import UniverseError
from repro.relational.facts import Value


class Universe:
    """Base class of countable universes.

    Subclasses implement :meth:`enumerate`, :meth:`__contains__` and
    either :meth:`rank` or accept the default linear-scan rank.
    """

    #: True for finite universes; finite ones must implement __len__.
    finite: bool = False

    def enumerate(self) -> Iterator[Value]:
        """A fresh iterator over all elements, fixed order, no repeats."""
        raise NotImplementedError

    def __contains__(self, value: object) -> bool:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Value]:
        return self.enumerate()

    def rank(self, value: Value) -> int:
        """The 0-based index of ``value`` in the enumeration.

        Default implementation scans; subclasses override with closed
        forms.  Raises :class:`UniverseError` for foreign values.
        """
        if value not in self:
            raise UniverseError(f"{value!r} is not in {self!r}")
        for index, element in enumerate(self.enumerate()):
            if element == value:
                return index
        raise UniverseError(f"{value!r} not found by enumeration of {self!r}")

    def unrank(self, index: int) -> Value:
        """The element at position ``index`` of the enumeration."""
        if index < 0:
            raise UniverseError(f"rank must be non-negative, got {index}")
        for i, element in enumerate(self.enumerate()):
            if i == index:
                return element
        raise UniverseError(f"universe has fewer than {index + 1} elements")

    def prefix(self, n: int) -> List[Value]:
        """The first n elements of the enumeration."""
        return list(itertools.islice(self.enumerate(), n))

    def __len__(self) -> int:
        if not self.finite:
            raise UniverseError(f"{self!r} is infinite")
        return sum(1 for _ in self.enumerate())

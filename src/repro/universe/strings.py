"""String universes: ``Σ*`` in shortlex order.

This is the paper's canonical countable universe ("for example U = Σ*
for some finite alphabet Σ, so that an algorithm can generate all
facts", §6; it also appears in Example 2.4 and Example 3.2).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import UniverseError
from repro.relational.facts import Value
from repro.universe.base import Universe
from repro.utils.enumeration import kleene_star


class StringUniverse(Universe):
    """``Σ*`` over a finite alphabet, enumerated shortlex.

    >>> u = StringUniverse("ab")
    >>> u.prefix(5)
    ['', 'a', 'b', 'aa', 'ab']
    >>> u.rank('ba')
    5
    >>> u.unrank(5)
    'ba'
    """

    finite = False

    def __init__(self, alphabet: Sequence[str]):
        alphabet = tuple(alphabet)
        if not alphabet:
            raise UniverseError("alphabet must be non-empty")
        if any(len(symbol) != 1 for symbol in alphabet):
            raise UniverseError("alphabet symbols must be single characters")
        if len(set(alphabet)) != len(alphabet):
            raise UniverseError("alphabet symbols must be distinct")
        self.alphabet: Tuple[str, ...] = alphabet
        self._index = {symbol: i for i, symbol in enumerate(alphabet)}

    def enumerate(self) -> Iterator[Value]:
        for word in kleene_star(self.alphabet):
            yield "".join(word)

    def __contains__(self, value: object) -> bool:
        return isinstance(value, str) and all(ch in self._index for ch in value)

    def rank(self, value: Value) -> int:
        """Closed-form shortlex rank.

        Words shorter than ``value`` contribute ``Σ_{l<n} |Σ|^l``; within
        length n the word is read as a base-|Σ| numeral.
        """
        if value not in self:
            raise UniverseError(f"{value!r} is not a word over {self.alphabet}")
        word = str(value)
        base = len(self.alphabet)
        shorter = sum(base**length for length in range(len(word)))
        within = 0
        for ch in word:
            within = within * base + self._index[ch]
        return shorter + within

    def unrank(self, index: int) -> Value:
        if index < 0:
            raise UniverseError(f"rank must be non-negative, got {index}")
        base = len(self.alphabet)
        length = 0
        block = 1  # number of words of the current length
        remaining = index
        while remaining >= block:
            remaining -= block
            length += 1
            block *= base
        digits = []
        for _ in range(length):
            digits.append(remaining % base)
            remaining //= base
        return "".join(self.alphabet[d] for d in reversed(digits))

    def __repr__(self) -> str:
        return f"StringUniverse({''.join(self.alphabet)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringUniverse) and self.alphabet == other.alphabet

    def __hash__(self) -> int:
        return hash(("StringUniverse", self.alphabet))


class BinaryStrings(StringUniverse):
    """``{0,1}*`` — the Σ of Proposition 6.2, with the paper's
    identification of Σ* with ℕ: the string x represents the integer
    with binary representation ``1x``.

    >>> b = BinaryStrings()
    >>> b.to_natural(''), b.to_natural('0'), b.to_natural('1')
    (1, 2, 3)
    >>> b.from_natural(6)
    '10'
    """

    def __init__(self):
        super().__init__("01")

    @staticmethod
    def to_natural(word: str) -> int:
        """The positive integer with binary representation ``1·word``."""
        return int("1" + word, 2)

    @staticmethod
    def from_natural(n: int) -> str:
        """Inverse of :meth:`to_natural`."""
        if n < 1:
            raise UniverseError(f"expected a positive integer, got {n}")
        return bin(n)[3:]  # strip '0b1'

    def __repr__(self) -> str:
        return "BinaryStrings()"

"""Product universes ``U₁ × … × U_k``: the argument-tuple spaces of
k-ary relations, enumerated diagonally so infinite factors work."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import UniverseError
from repro.relational.facts import Value
from repro.universe.base import Universe
from repro.utils.enumeration import cantor_pair, cantor_unpair, diagonal_product


class ProductUniverse(Universe):
    """The cartesian product of countably many (finitely listed)
    universes, enumerated in diagonal (Cantor) order.

    >>> from repro.universe.naturals import Naturals
    >>> p = ProductUniverse([Naturals(), Naturals()])
    >>> p.prefix(4)
    [(1, 1), (1, 2), (2, 1), (1, 3)]
    >>> (3, "x") in p
    False
    """

    def __init__(self, factors: Sequence[Universe]):
        factors = tuple(factors)
        if not factors:
            raise UniverseError("product of no universes")
        self.factors: Tuple[Universe, ...] = factors
        self.finite = all(factor.finite for factor in factors)

    def enumerate(self) -> Iterator[Value]:
        return diagonal_product(
            *[factor.enumerate() for factor in self.factors]
        )

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, tuple) or len(value) != len(self.factors):
            return False
        return all(v in factor for v, factor in zip(value, self.factors))

    def rank(self, value: Value) -> int:
        """Closed-form rank for the 2-factor infinite case via Cantor
        pairing; other shapes fall back to scanning."""
        if value not in self:
            raise UniverseError(f"{value!r} not in {self!r}")
        if len(self.factors) == 1:
            return self.factors[0].rank(value[0])
        if len(self.factors) == 2 and not self.finite and all(
            not factor.finite for factor in self.factors
        ):
            left = self.factors[0].rank(value[0])
            right = self.factors[1].rank(value[1])
            # diagonal_product order is by total, then by first index
            # ascending, which is Cantor pairing with swapped roles.
            return cantor_pair(right, left)
        return super().rank(value)

    def __len__(self) -> int:
        if not self.finite:
            raise UniverseError(f"{self!r} is infinite")
        result = 1
        for factor in self.factors:
            result *= len(factor)
        return result

    def __repr__(self) -> str:
        return f"ProductUniverse({list(self.factors)!r})"

"""The infinite distributive law (Lemma 2.3).

    Π_{i∈I} (1 + a_i)  =  Σ_{finite J ⊆ I} Π_{j∈J} a_j

for absolutely convergent ``Σ a_i``.  Lemma 4.3 (the construction's
measure sums to 1) is an instance of this identity.  The library verifies
the law on finite truncations exactly, which is how the E10 benchmark
demonstrates convergence of both sides to a common value.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import List, Sequence, Tuple, Union

from repro.utils.rationals import as_fraction

Number = Union[int, float, Fraction]


def subset_sum_expansion(terms: Sequence[Number]) -> Fraction:
    """Exact ``Σ_{J ⊆ {1..n}} Π_{j∈J} a_j`` over all (finite) subsets.

    Computed incrementally as ``Π (1 + a_i)`` *is* that sum for finite
    index sets — but we expand it subset-by-subset to exercise the
    right-hand side of Lemma 2.3 literally.

    >>> subset_sum_expansion([Fraction(1, 2), Fraction(1, 3)])
    Fraction(2, 1)
    """
    fractions = [as_fraction(a) for a in terms]
    total = Fraction(0)
    n = len(fractions)
    for size in range(n + 1):
        for subset in combinations(range(n), size):
            product = Fraction(1)
            for index in subset:
                product *= fractions[index]
            total += product
    return total


def product_expansion(terms: Sequence[Number]) -> Fraction:
    """Exact ``Π (1 + a_i)`` — the left-hand side of Lemma 2.3.

    >>> product_expansion([Fraction(1, 2), Fraction(1, 3)])
    Fraction(2, 1)
    """
    product = Fraction(1)
    for a in terms:
        product *= 1 + as_fraction(a)
    return product


def distributive_law_truncation(
    terms: Sequence[Number],
) -> Tuple[Fraction, Fraction, bool]:
    """Verify Lemma 2.3 exactly on a finite truncation.

    Returns ``(lhs, rhs, equal)`` where lhs is ``Π (1 + a_i)``, rhs is
    the subset-sum expansion, and ``equal`` reports exact equality.

    >>> lhs, rhs, ok = distributive_law_truncation([0.5, 0.25, 0.125])
    >>> ok
    True
    """
    lhs = product_expansion(terms)
    rhs = subset_sum_expansion(terms)
    return lhs, rhs, lhs == rhs


def distributive_law_convergence(
    prefixes: Sequence[Sequence[Number]],
) -> List[Tuple[int, Fraction]]:
    """Evaluate the (common) value of both sides across growing prefixes,
    demonstrating convergence of the truncations.

    Returns ``[(prefix_length, value), …]``; raises AssertionError if any
    truncation violates the law (it cannot, by Lemma 2.3 — this is the
    empirical check).
    """
    results: List[Tuple[int, Fraction]] = []
    for prefix in prefixes:
        lhs, rhs, ok = distributive_law_truncation(prefix)
        if not ok:
            raise AssertionError(
                f"distributive law violated on prefix of length {len(prefix)}"
            )
        results.append((len(prefix), lhs))
    return results

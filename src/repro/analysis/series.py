"""Series of fact probabilities: partial sums, tails, and convergence
certificates.

Theorem 4.8 characterizes existence of countable tuple-independent PDBs
by convergence of ``Σ p_f``.  Numerically, convergence of an arbitrary
black-box series is undecidable, so the library works with *certified*
series: a :class:`SeriesCertificate` pairs the sequence with an explicit
tail bound ``tail(n) ≥ Σ_{i>n} p_i`` that tends to 0.  Standard
certificates (geometric, zeta with exponent > 1, finite support) are
provided; custom ones take a user-supplied tail function.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.errors import ConvergenceError


def partial_sums(terms: Iterable[float]) -> Iterator[float]:
    """Yield the running partial sums ``Σ_{i≤n} x_i``.

    >>> from repro.utils import take
    >>> take(4, partial_sums([1, 2, 3, 4]))
    [1, 3, 6, 10]
    """
    return itertools.accumulate(terms)


class _GeometricTerms:
    """Picklable ``terms()`` of a geometric series — a plain closure
    would make every distribution (and so every refinement session
    snapshot) unpicklable."""

    __slots__ = ("first", "ratio")

    def __init__(self, first: float, ratio: float):
        self.first = first
        self.ratio = ratio

    def __call__(self) -> Iterator[float]:
        value = self.first
        while True:
            yield value
            value *= self.ratio


class _GeometricTail:
    __slots__ = ("first", "ratio")

    def __init__(self, first: float, ratio: float):
        self.first = first
        self.ratio = ratio

    def __call__(self, n: int) -> float:
        return self.first * self.ratio**n / (1 - self.ratio)


class _ZetaTerms:
    __slots__ = ("exponent", "scale")

    def __init__(self, exponent: float, scale: float):
        self.exponent = exponent
        self.scale = scale

    def __call__(self) -> Iterator[float]:
        for i in itertools.count(1):
            yield self.scale / i**self.exponent


class _ZetaTail:
    __slots__ = ("exponent", "scale")

    def __init__(self, exponent: float, scale: float):
        self.exponent = exponent
        self.scale = scale

    def __call__(self, n: int) -> float:
        if n == 0:
            return self.scale * (1 + 1 / (self.exponent - 1))
        return self.scale * n ** (1 - self.exponent) / (self.exponent - 1)


class _FiniteTerms:
    __slots__ = ("values",)

    def __init__(self, values: List[float]):
        self.values = values

    def __call__(self) -> Iterator[float]:
        return iter(self.values)


class _FiniteTail:
    __slots__ = ("suffix", "length")

    def __init__(self, suffix: List[float], length: int):
        self.suffix = suffix
        self.length = length

    def __call__(self, n: int) -> float:
        return self.suffix[min(n, self.length)]


def geometric_tail(first: float, ratio: float) -> Callable[[int], float]:
    """Tail bound for the geometric series ``first · ratio^i`` (i ≥ 0).

    ``tail(n) = first · ratio^n / (1 − ratio)`` bounds ``Σ_{i ≥ n}``.

    >>> tail = geometric_tail(0.5, 0.5)
    >>> abs(tail(0) - 1.0) < 1e-12
    True
    """
    if not 0 <= ratio < 1:
        raise ConvergenceError(f"geometric ratio must be in [0, 1), got {ratio}")
    if first < 0:
        raise ConvergenceError(f"first term must be non-negative, got {first}")
    return _GeometricTail(first, ratio)


def zeta_tail(exponent: float, scale: float = 1.0) -> Callable[[int], float]:
    """Tail bound for ``scale / i^exponent`` (i ≥ 1), exponent > 1.

    Integral bound: ``Σ_{i > n} scale/i^s ≤ scale · n^{1−s} / (s − 1)``
    for n ≥ 1; tail(0) falls back to the full sum bound
    ``scale · (1 + 1/(s−1))``.

    >>> tail = zeta_tail(2.0)
    >>> tail(10) <= 0.1 + 1e-12
    True
    """
    if exponent <= 1:
        raise ConvergenceError(
            f"zeta series requires exponent > 1 for convergence, got {exponent}"
        )
    if scale < 0:
        raise ConvergenceError(f"scale must be non-negative, got {scale}")
    return _ZetaTail(exponent, scale)


class SeriesCertificate:
    """A non-negative series with a certified convergent tail.

    Parameters
    ----------
    terms:
        A callable producing a fresh iterator over the terms ``p_1, p_2, …``
        (each call must enumerate the same sequence).
    tail:
        ``tail(n)`` must upper-bound ``Σ_{i > n} p_i`` and tend to 0.
    total:
        The exact value of ``Σ p_i`` if known in closed form; otherwise
        it is approximated on demand via :meth:`sum`.

    >>> cert = SeriesCertificate.geometric(0.5, 0.5)
    >>> abs(cert.sum(1e-9) - 1.0) < 1e-8
    True
    >>> cert.prefix_length_for_tail(0.01) <= 10
    True
    """

    def __init__(
        self,
        terms: Callable[[], Iterator[float]],
        tail: Callable[[int], float],
        total: Optional[float] = None,
    ):
        self._terms = terms
        self._tail = tail
        self._total = total

    # ------------------------------------------------------------ constructors
    @classmethod
    def geometric(cls, first: float, ratio: float) -> "SeriesCertificate":
        """``p_i = first · ratio^{i-1}``, i ≥ 1."""
        total = first / (1 - ratio) if ratio < 1 else math.inf
        return cls(
            _GeometricTerms(first, ratio),
            geometric_tail(first, ratio),
            total=total,
        )

    @classmethod
    def zeta(cls, exponent: float, scale: float = 1.0) -> "SeriesCertificate":
        """``p_i = scale / i^exponent``, i ≥ 1, exponent > 1.

        The total is evaluated once by Euler–Maclaurin: a partial sum to
        N plus ``∫_N^∞ − f(N)/2 + f′(N)·(−1/12)`` — accurate to
        ``O(N^{−exponent−3})``, far beyond float precision at N = 10⁴.
        """
        cutoff = 10**4
        partial = sum(scale / i**exponent for i in range(1, cutoff + 1))
        integral = scale * cutoff ** (1 - exponent) / (exponent - 1)
        correction = (
            -0.5 * scale * cutoff**-exponent
            + exponent * scale * cutoff ** (-exponent - 1) / 12.0
        )
        total = partial + integral + correction
        return cls(
            _ZetaTerms(exponent, scale),
            zeta_tail(exponent, scale),
            total=total,
        )

    @classmethod
    def finite(cls, values: Sequence[float]) -> "SeriesCertificate":
        """A finitely supported series (tail 0 beyond the support)."""
        values = list(values)
        if any(v < 0 for v in values):
            raise ConvergenceError("series terms must be non-negative")
        suffix: List[float] = [0.0] * (len(values) + 1)
        for i in range(len(values) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + values[i]
        return cls(
            _FiniteTerms(values),
            _FiniteTail(suffix, len(values)),
            total=sum(values),
        )

    # ----------------------------------------------------------------- queries
    def terms(self) -> Iterator[float]:
        """A fresh iterator over the terms."""
        return self._terms()

    def tail(self, n: int) -> float:
        """Certified upper bound on ``Σ_{i > n} p_i``."""
        bound = self._tail(n)
        if bound < 0:
            raise ConvergenceError(f"tail bound must be non-negative, got {bound}")
        return bound

    def sum(self, tolerance: float = 1e-12, max_terms: int = 10**7) -> float:
        """``Σ p_i`` to within ``tolerance`` (exact total if known).

        Raises :class:`ConvergenceError` if the tail does not drop below
        ``tolerance`` within ``max_terms`` terms.
        """
        if self._total is not None:
            return self._total
        acc = 0.0
        for n, term in enumerate(self.terms(), start=1):
            acc += term
            if self.tail(n) <= tolerance:
                return acc
            if n >= max_terms:
                raise ConvergenceError(
                    f"tail still {self.tail(n):.3g} after {max_terms} terms"
                )
        return acc  # finite series exhausted

    def prefix_length_for_tail(self, bound: float, max_terms: int = 10**7) -> int:
        """Smallest n (by linear search) with ``tail(n) ≤ bound``.

        This is the "systematically listing facts until the remaining
        probability mass is small enough" step of Proposition 6.1.
        """
        if bound <= 0:
            raise ConvergenceError(f"tail bound must be positive, got {bound}")
        for n in range(max_terms + 1):
            if self.tail(n) <= bound:
                return n
        raise ConvergenceError(
            f"tail did not reach {bound} within {max_terms} terms "
            "(series may converge arbitrarily slowly, cf. paper §6)"
        )

    def prefix(self, n: int) -> List[float]:
        """The first n terms as a list."""
        return list(itertools.islice(self.terms(), n))


def certify_convergence(
    terms: Sequence[float],
    tail: Optional[Callable[[int], float]] = None,
) -> SeriesCertificate:
    """Build a certificate from an explicit finite term list, or from an
    arbitrary sequence plus a caller-supplied tail bound.

    >>> cert = certify_convergence([0.5, 0.25])
    >>> cert.sum()
    0.75
    """
    if tail is None:
        return SeriesCertificate.finite(terms)
    return SeriesCertificate(_FiniteTerms(list(terms)), tail)

"""Infinite products (paper §2.2, Fact 2.2).

The value of the tuple-independent construction's empty-tail factor
``Π_{f ∈ F_ω − D} (1 − p_f)`` is computed here, in log space to avoid
underflow for long products, with certified truncation error derived
from the series tail bound.

The finite building blocks (``product_complement``,
``log_product_complement``) now live in :mod:`repro.utils.probability`
— the shared home of all complement/disjunction arithmetic — and are
re-exported here unchanged for the existing import sites.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

from repro.analysis.series import SeriesCertificate
from repro.errors import ConvergenceError
from repro.utils.probability import (  # noqa: F401  (re-exports)
    log_product_complement,
    product_complement,
)


def product_one_plus(terms: Iterable[float]) -> float:
    """Finite product ``Π (1 + a_i)`` evaluated in log space when safe.

    >>> round(product_one_plus([0.5, -0.5]), 10)
    0.75
    """
    log_sum = 0.0
    zero = False
    for a in terms:
        factor = 1.0 + a
        if factor < 0:
            raise ConvergenceError(f"factor 1 + {a} is negative")
        if factor == 0.0:
            zero = True
            continue
        log_sum += math.log(factor)
    if zero:
        return 0.0
    return math.exp(log_sum)


def converges_absolutely(certificate: SeriesCertificate) -> bool:
    """Fact 2.2: ``Π (1 + a_i)`` converges absolutely iff ``Σ a_i`` does.

    For our non-negative certified series this is simply "the certified
    tail tends to zero"; a certificate by construction guarantees it, so
    this returns True after sanity-checking the first few tail values.
    """
    previous = math.inf
    for n in (0, 1, 10, 100):
        bound = certificate.tail(n)
        if bound > previous + 1e-15:
            return False
        previous = bound
    return certificate.tail(100) < math.inf


def infinite_product_complement(
    certificate: SeriesCertificate,
    tolerance: float = 1e-12,
    max_terms: int = 10**7,
) -> Tuple[float, float]:
    """``Π_{i≥1} (1 − p_i)`` for a certified series of probabilities.

    Returns ``(value, error_bound)`` where the true infinite product lies
    in ``[value · exp(−tail), value]`` and ``error_bound`` bounds the
    absolute error.  The truncation point is chosen so the remaining tail
    mass is below ``tolerance``.

    The lower bound uses ``Π_{i>n}(1 − p_i) ≥ 1 − Σ_{i>n} p_i`` (union
    bound), valid for any probabilities.

    >>> cert = SeriesCertificate.geometric(0.25, 0.5)
    >>> value, err = infinite_product_complement(cert)
    >>> 0 < value < 1 and err < 1e-9
    True
    """
    n = certificate.prefix_length_for_tail(tolerance, max_terms=max_terms)
    head = certificate.prefix(n)
    value = product_complement(head)
    tail = certificate.tail(n)
    # True product = value · Π_{i>n}(1−p_i) ∈ [value·(1−tail), value].
    error_bound = value * tail
    return value, error_bound

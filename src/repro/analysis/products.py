"""Infinite products (paper §2.2, Fact 2.2).

The value of the tuple-independent construction's empty-tail factor
``Π_{f ∈ F_ω − D} (1 − p_f)`` is computed here, in log space to avoid
underflow for long products, with certified truncation error derived
from the series tail bound.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

from repro.analysis.series import SeriesCertificate
from repro.errors import ConvergenceError


def product_one_plus(terms: Iterable[float]) -> float:
    """Finite product ``Π (1 + a_i)`` evaluated in log space when safe.

    >>> round(product_one_plus([0.5, -0.5]), 10)
    0.75
    """
    log_sum = 0.0
    zero = False
    for a in terms:
        factor = 1.0 + a
        if factor < 0:
            raise ConvergenceError(f"factor 1 + {a} is negative")
        if factor == 0.0:
            zero = True
            continue
        log_sum += math.log(factor)
    if zero:
        return 0.0
    return math.exp(log_sum)


def product_complement(probabilities: Iterable[float]) -> float:
    """Finite product ``Π (1 − p_i)`` for probabilities ``p_i ∈ [0, 1]``.

    Multiplies directly — one rounding per factor, so dyadic marginals
    stay *bit-exact* (which lets the exact query-evaluation strategies
    agree to the last ulp) and the hot path of world expansion skips a
    ``log1p``/``exp`` round-trip per fact.  Probabilities below one ulp
    of 1.0 (where ``1 − p`` would round to 1) and products at the edge
    of underflow are accumulated in log space as before.

    >>> product_complement([0.5, 0.5])
    0.25
    >>> product_complement([1.0, 0.3])
    0.0
    """
    product = 1.0
    residual_log = 0.0
    for p in probabilities:
        if not 0 <= p <= 1:
            raise ConvergenceError(f"probability {p} outside [0, 1]")
        if p == 1.0:
            return 0.0
        if p < 1e-16:
            # 1 − p rounds to 1.0; log1p(−p) is −p to double precision.
            residual_log -= p
            continue
        product *= 1.0 - p
        if product < 1e-300:
            residual_log += math.log(product)
            product = 1.0
    if residual_log == 0.0:
        return product
    return product * math.exp(residual_log)


def converges_absolutely(certificate: SeriesCertificate) -> bool:
    """Fact 2.2: ``Π (1 + a_i)`` converges absolutely iff ``Σ a_i`` does.

    For our non-negative certified series this is simply "the certified
    tail tends to zero"; a certificate by construction guarantees it, so
    this returns True after sanity-checking the first few tail values.
    """
    previous = math.inf
    for n in (0, 1, 10, 100):
        bound = certificate.tail(n)
        if bound > previous + 1e-15:
            return False
        previous = bound
    return certificate.tail(100) < math.inf


def infinite_product_complement(
    certificate: SeriesCertificate,
    tolerance: float = 1e-12,
    max_terms: int = 10**7,
) -> Tuple[float, float]:
    """``Π_{i≥1} (1 − p_i)`` for a certified series of probabilities.

    Returns ``(value, error_bound)`` where the true infinite product lies
    in ``[value · exp(−tail), value]`` and ``error_bound`` bounds the
    absolute error.  The truncation point is chosen so the remaining tail
    mass is below ``tolerance``.

    The lower bound uses ``Π_{i>n}(1 − p_i) ≥ 1 − Σ_{i>n} p_i`` (union
    bound), valid for any probabilities.

    >>> cert = SeriesCertificate.geometric(0.25, 0.5)
    >>> value, err = infinite_product_complement(cert)
    >>> 0 < value < 1 and err < 1e-9
    True
    """
    n = certificate.prefix_length_for_tail(tolerance, max_terms=max_terms)
    head = certificate.prefix(n)
    value = product_complement(head)
    tail = certificate.tail(n)
    # True product = value · Π_{i>n}(1−p_i) ∈ [value·(1−tail), value].
    error_bound = value * tail
    return value, error_bound


def log_product_complement(probabilities: Iterable[float]) -> float:
    """``log Π (1 − p_i) = Σ log1p(−p_i)``; −inf if any ``p_i = 1``.

    >>> log_product_complement([0.5]) == math.log(0.5)
    True
    """
    total = 0.0
    for p in probabilities:
        if not 0 <= p <= 1:
            raise ConvergenceError(f"probability {p} outside [0, 1]")
        if p == 1.0:
            return -math.inf
        total += math.log1p(-p)
    return total

"""Analytic bounds used by the approximation algorithm (Proposition 6.1).

The appendix of the paper proves claim (∗): for ``p_i ∈ [0, 1/2)`` with
``Σ p_i < ∞``,

    Π (1 − p_i)  ≥  exp(−(3/2) Σ p_i).

With ``α_n := (3/2) Σ_{i>n} p_i`` the truncation error analysis then
requires ``e^{α_n} ≤ 1 + ε`` and ``e^{−α_n} ≥ 1 − ε``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

from repro.analysis.products import product_complement
from repro.errors import ApproximationError, ConvergenceError


def complement_product_lower_bound(probabilities: Iterable[float]) -> float:
    """The (∗) lower bound ``exp(−(3/2) Σ p_i)``.

    Requires every ``p_i < 1/2`` (the paper's hypothesis).

    >>> bound = complement_product_lower_bound([0.1, 0.2])
    >>> actual = product_complement([0.1, 0.2])
    >>> bound <= actual
    True
    """
    total = 0.0
    for p in probabilities:
        if not 0 <= p < 0.5:
            raise ConvergenceError(
                f"claim (*) requires p in [0, 1/2), got {p}"
            )
        total += p
    return math.exp(-1.5 * total)


def verify_star_bound(probabilities: Sequence[float]) -> Tuple[float, float, bool]:
    """Check claim (∗) numerically: returns (product, bound, holds).

    >>> product, bound, holds = verify_star_bound([0.3, 0.4, 0.1])
    >>> holds
    True
    """
    product = product_complement(probabilities)
    bound = complement_product_lower_bound(probabilities)
    return product, bound, product >= bound - 1e-15


def alpha_from_tail(tail_mass: float) -> float:
    """``α_n = (3/2) · Σ_{i>n} p_i`` from the certified tail mass."""
    if tail_mass < 0:
        raise ApproximationError(f"tail mass must be non-negative, got {tail_mass}")
    return 1.5 * tail_mass


def epsilon_conditions_hold(alpha: float, epsilon: float) -> bool:
    """The truncation-size conditions of Proposition 6.1:
    ``e^α ≤ 1 + ε`` and ``e^{−α} ≥ 1 − ε``.

    Evaluated with a hair of floating-point slack so that the exact
    boundary value ``α = log(1 + ε)`` passes.

    >>> epsilon_conditions_hold(0.0001, 0.01)
    True
    >>> epsilon_conditions_hold(1.0, 0.01)
    False
    """
    slack = 1e-12
    return (
        math.exp(alpha) <= (1 + epsilon) * (1 + slack)
        and math.exp(-alpha) >= (1 - epsilon) * (1 - slack)
    )


def required_alpha(epsilon: float) -> float:
    """The largest α satisfying both ε-conditions:
    ``α ≤ min(log(1+ε), −log(1−ε)) = log(1+ε)``.

    (For ε ∈ (0, 1), ``log(1+ε) ≤ −log(1−ε)``, so the binding condition
    is ``e^α ≤ 1+ε``.)

    >>> a = required_alpha(0.1)
    >>> epsilon_conditions_hold(a, 0.1)
    True
    """
    if not 0 < epsilon < 0.5:
        raise ApproximationError(
            f"Proposition 6.1 requires 0 < epsilon < 1/2, got {epsilon}"
        )
    return math.log1p(epsilon)


def truncation_error_bound(tail_mass: float) -> float:
    """Additive error bound implied by the remaining tail mass:
    ``1 − e^{−α_n} ≤ ε`` portion of the proof — the probability mass of
    the worlds outside Ω_n is at most ``1 − e^{−(3/2)·tail}``.

    >>> truncation_error_bound(0.0) == 0.0
    True
    """
    return 1 - math.exp(-alpha_from_tail(tail_mass))

"""The (second) Borel–Cantelli lemma, empirically (Lemma 2.5).

The necessity direction of Theorem 4.8 (Lemma 4.6) rests on
Borel–Cantelli: if independent events have divergent probability sum,
almost surely infinitely many occur — but instances of a PDB are finite,
contradiction.  This module provides Monte-Carlo demonstrators used by
tests and the E10 bench: simulate independent Bernoulli events and count
how many occur among the first N, under convergent vs divergent ``Σ p_i``.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Sequence, Tuple


def simulate_event_count(
    probabilities: Sequence[float],
    trials: int,
    rng: random.Random,
) -> List[int]:
    """For each trial, the number of the given independent events that
    occur.  Returns one count per trial.

    >>> rng = random.Random(0)
    >>> counts = simulate_event_count([1.0, 1.0, 0.0], 5, rng)
    >>> counts
    [2, 2, 2, 2, 2]
    """
    counts = []
    for _ in range(trials):
        count = sum(1 for p in probabilities if rng.random() < p)
        counts.append(count)
    return counts


def borel_cantelli_frequency(
    probability_of: Callable[[int], float],
    horizon: int,
    threshold: int,
    trials: int,
    seed: int = 0,
) -> float:
    """Fraction of trials in which at least ``threshold`` of the events
    ``A_1 … A_horizon`` occur (events independent, ``P(A_i)`` given by
    ``probability_of(i)``, i ≥ 1).

    Divergent ``Σ P(A_i)`` (e.g. ``1/i``) drives this fraction to 1 for
    any fixed threshold as the horizon grows (second Borel–Cantelli);
    convergent sums keep the expected count bounded (first
    Borel–Cantelli), so the fraction stays small for thresholds above
    that bound.

    >>> freq = borel_cantelli_frequency(lambda i: 1.0 / i, 2000, 5, 200)
    >>> freq > 0.9
    True
    >>> freq = borel_cantelli_frequency(lambda i: 1.0 / i**2, 2000, 5, 200)
    >>> freq < 0.1
    True
    """
    rng = random.Random(seed)
    hits = 0
    probabilities = [probability_of(i) for i in range(1, horizon + 1)]
    for _ in range(trials):
        count = 0
        for p in probabilities:
            if rng.random() < p:
                count += 1
                if count >= threshold:
                    break
        if count >= threshold:
            hits += 1
    return hits / trials


def expected_count(probability_of: Callable[[int], float], horizon: int) -> float:
    """``Σ_{i≤horizon} P(A_i)`` — the partial sum driving the dichotomy."""
    return sum(probability_of(i) for i in range(1, horizon + 1))

"""Series and infinite products (paper §2.2).

Infinite products ``Π (1 − p_f)`` are the analytic heart of the
tuple-independent construction (Theorem 4.8); this package provides
convergence certificates for fact-probability series, log-space product
evaluation, the infinite distributive law (Lemma 2.3) and the tail bound
``Π(1−p_i) ≥ exp(−(3/2) Σ p_i)`` used in Proposition 6.1.
"""

from repro.analysis.series import (
    SeriesCertificate,
    certify_convergence,
    geometric_tail,
    partial_sums,
    zeta_tail,
)
from repro.analysis.products import (
    converges_absolutely,
    product_complement,
    product_one_plus,
)
from repro.analysis.distributive import distributive_law_truncation
from repro.analysis.bounds import (
    complement_product_lower_bound,
    truncation_error_bound,
)
from repro.analysis.borel_cantelli import borel_cantelli_frequency

__all__ = [
    "SeriesCertificate",
    "certify_convergence",
    "partial_sums",
    "geometric_tail",
    "zeta_tail",
    "product_one_plus",
    "product_complement",
    "converges_absolutely",
    "distributive_law_truncation",
    "complement_product_lower_bound",
    "truncation_error_bound",
    "borel_cantelli_frequency",
]

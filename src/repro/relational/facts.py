"""Facts: ground atoms ``R(a₁, …, a_k)``.

A fact is the basic event unit of a probabilistic database — the paper's
``f ∈ F[τ, U]``.  Facts are immutable, hashable value objects with a
total order (relation name first, then arguments by their canonical sort
key) so that sets of facts have a deterministic iteration order.
"""

from __future__ import annotations

import re
from typing import Iterable, Tuple, Union

from repro.errors import ParseError, SchemaError
from repro.relational.schema import RelationSymbol, Schema

#: Values allowed as fact arguments.  The library is agnostic beyond
#: hashability; sort keys make heterogeneous argument tuples orderable.
Value = Union[int, float, str, tuple]


def domain_sort_key(value: object) -> Tuple[str, str]:
    """Shared total-order key for *domain and candidate* values.

    Every place that sorts a quantifier domain or a candidate-answer
    list uses this one key.  Sorting mixed-type values by ``repr`` alone
    interleaves ints and strings by their repr text (``10`` before
    ``2``, ``'a'`` between them); keying by ``(type name, repr)`` keeps
    each type contiguous and totally ordered without ever comparing
    unlike types.

    >>> sorted([10, "a", 2], key=domain_sort_key)
    [10, 2, 'a']
    """
    return (type(value).__name__, repr(value))


def _sort_key(value: object) -> tuple:
    """Total order over heterogeneous argument values.

    Orders by type name first, then value, so ints, strings and floats
    never raise TypeError when compared.
    """
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", value)
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, tuple):
        return ("tuple", tuple(_sort_key(v) for v in value))
    return (type(value).__name__, repr(value))


class Fact:
    """A ground atom ``R(a₁, …, a_k)``.

    >>> R = RelationSymbol("R", 2)
    >>> f = Fact(R, (1, "x"))
    >>> f.relation.name, f.args
    ('R', (1, 'x'))
    >>> f == Fact(RelationSymbol("R", 2), (1, "x"))
    True
    """

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: RelationSymbol, args: Iterable[Value]):
        args = tuple(args)
        if len(args) != relation.arity:
            raise SchemaError(
                f"relation {relation} expects {relation.arity} arguments, "
                f"got {len(args)}: {args!r}"
            )
        self.relation = relation
        self.args: Tuple[Value, ...] = args
        self._hash = hash((relation, args))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.relation == other.relation and self.args == other.args

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Fact") -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """Deterministic total-order key over all facts."""
        return (
            self.relation.name,
            self.relation.arity,
            tuple(_sort_key(a) for a in self.args),
        )

    def __repr__(self) -> str:
        return f"Fact({self})"

    def __str__(self) -> str:
        inner = ", ".join(_format_value(a) for a in self.args)
        return f"{self.relation.name}({inner})"

    @property
    def active_values(self) -> Tuple[Value, ...]:
        """The universe elements occurring in this fact (its adom)."""
        return self.args


def _format_value(value: Value) -> str:
    if isinstance(value, str):
        return repr(value)
    return str(value)


_FACT_PATTERN = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(.*?)\s*\)\s*$", re.DOTALL
)


def parse_fact(text: str, schema: Schema) -> Fact:
    """Parse ``"R(1, 'abc', 2.5)"`` into a :class:`Fact` against a schema.

    Arguments are parsed as Python literals for ints, floats and quoted
    strings; bare identifiers are taken as strings.

    >>> schema = Schema.of(R=2)
    >>> parse_fact("R(1, abc)", schema)
    Fact(R(1, 'abc'))
    """
    match = _FACT_PATTERN.match(text)
    if not match:
        raise ParseError(f"not a fact: {text!r}")
    name, argtext = match.groups()
    symbol = schema[name]
    args = tuple(_parse_value(tok) for tok in _split_args(argtext))
    return Fact(symbol, args)


def _split_args(argtext: str):
    """Split a comma-separated argument list, respecting quotes."""
    if not argtext.strip():
        return
    depth = 0
    current = []
    in_quote: str = ""
    for ch in argtext:
        if in_quote:
            current.append(ch)
            if ch == in_quote:
                in_quote = ""
            continue
        if ch in "'\"":
            in_quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            yield "".join(current).strip()
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        yield tail


def _parse_value(token: str) -> Value:
    token = token.strip()
    if not token:
        raise ParseError("empty fact argument")
    if token[0] in "'\"" and token[-1] == token[0] and len(token) >= 2:
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token

"""Relational database substrate: schemas, facts, instances and a small
relational algebra engine.

This package implements the classical relational model of Section 2.1 of
the paper: a schema ``τ`` of relation symbols with arities, facts
``R(a₁, …, a_k)`` over a universe ``U``, and database instances as finite
sets of facts (``D[τ, U]`` = finite subsets of ``F[τ, U]``).
"""

from repro.relational.schema import RelationSymbol, Schema
from repro.relational.facts import Fact, domain_sort_key, parse_fact
from repro.relational.columns import (
    ColumnStore,
    FloatColumn,
    IntColumn,
    available_backends,
    resolve_backend,
)
from repro.relational.index import FactIndex
from repro.relational.instance import Instance
from repro.relational.algebra import (
    Relation,
    difference,
    join,
    project,
    rename,
    select,
    union,
)
from repro.relational.typed import AttributeType, TypedRelationSymbol, TypedSchema

__all__ = [
    "RelationSymbol",
    "Schema",
    "Fact",
    "FactIndex",
    "ColumnStore",
    "FloatColumn",
    "IntColumn",
    "available_backends",
    "resolve_backend",
    "domain_sort_key",
    "parse_fact",
    "Instance",
    "Relation",
    "select",
    "project",
    "join",
    "union",
    "difference",
    "rename",
    "AttributeType",
    "TypedRelationSymbol",
    "TypedSchema",
]

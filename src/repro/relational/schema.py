"""Database schemas: relation symbols with arities and optional attribute
names.

A schema ``τ = {R₁, …, R_m}`` (paper §2.1) is a finite set of relation
symbols, each with an associated arity ``ar(R) ∈ ℕ``.  Relation symbols
are value objects: two symbols with the same name and arity are equal and
interchangeable.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import SchemaError

_NAME_PATTERN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class RelationSymbol:
    """A relation symbol ``R`` with arity ``ar(R)``.

    Parameters
    ----------
    name:
        Identifier of the relation (``[A-Za-z_][A-Za-z0-9_]*``).
    arity:
        Number of argument positions; must be >= 0.  Arity 0 relations are
        allowed (they model propositional facts / Boolean query answers).
    attributes:
        Optional attribute names, one per position.

    >>> R = RelationSymbol("Temp", 2, attributes=("office", "celsius"))
    >>> R.name, R.arity
    ('Temp', 2)
    """

    __slots__ = ("name", "arity", "attributes")

    def __init__(
        self,
        name: str,
        arity: int,
        attributes: Optional[Sequence[str]] = None,
    ):
        if not _NAME_PATTERN.match(name):
            raise SchemaError(f"invalid relation name {name!r}")
        if arity < 0:
            raise SchemaError(f"arity must be non-negative, got {arity}")
        if attributes is not None:
            attributes = tuple(attributes)
            if len(attributes) != arity:
                raise SchemaError(
                    f"relation {name!r} has arity {arity} but "
                    f"{len(attributes)} attribute names"
                )
            if len(set(attributes)) != len(attributes):
                raise SchemaError(f"duplicate attribute names in {name!r}")
        self.name = name
        self.arity = arity
        self.attributes: Optional[Tuple[str, ...]] = attributes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSymbol):
            return NotImplemented
        return self.name == other.name and self.arity == other.arity

    def __hash__(self) -> int:
        return hash((self.name, self.arity))

    def __repr__(self) -> str:
        return f"RelationSymbol({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __call__(self, *args) -> "Fact":
        """Build a fact ``R(a₁, …, a_k)``; convenience for tests/examples.

        >>> R = RelationSymbol("R", 1)
        >>> R(7)
        Fact(R(7))
        """
        from repro.relational.facts import Fact

        return Fact(self, args)


class Schema:
    """A finite set of relation symbols with distinct names.

    Iteration order is deterministic (insertion order), which downstream
    fact-space enumerations rely on for reproducibility.

    >>> schema = Schema([RelationSymbol("R", 1), RelationSymbol("S", 2)])
    >>> [str(r) for r in schema]
    ['R/1', 'S/2']
    >>> schema["S"].arity
    2
    """

    __slots__ = ("_by_name",)

    def __init__(self, relations: Iterable[RelationSymbol] = ()):
        self._by_name: Dict[str, RelationSymbol] = {}
        for symbol in relations:
            self._add(symbol)

    def _add(self, symbol: RelationSymbol) -> None:
        existing = self._by_name.get(symbol.name)
        if existing is not None and existing != symbol:
            raise SchemaError(
                f"conflicting declarations for relation {symbol.name!r}: "
                f"arities {existing.arity} and {symbol.arity}"
            )
        self._by_name.setdefault(symbol.name, symbol)

    @classmethod
    def of(cls, **arities: int) -> "Schema":
        """Shorthand constructor: ``Schema.of(R=1, S=2)``.

        >>> sorted(str(r) for r in Schema.of(R=1, S=2))
        ['R/1', 'S/2']
        """
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, RelationSymbol):
            return self._by_name.get(item.name) == item
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(frozenset(self._by_name.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(r) for r in self)
        return f"Schema({{{inner}}})"

    def max_arity(self) -> int:
        """The maximum arity among relations (0 for an empty schema).

        Used by Proposition 4.9: ``|adom(D)| <= max_arity * ||D||``.
        """
        return max((r.arity for r in self), default=0)

    def union(self, other: "Schema") -> "Schema":
        """Schema containing the relations of both (names must agree)."""
        merged = Schema(self)
        for symbol in other:
            merged._add(symbol)
        return merged

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Sub-schema with only the named relations."""
        return Schema(self[name] for name in names)

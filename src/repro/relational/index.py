"""Per-relation hash indexes over a set of possible facts.

A :class:`FactIndex` is the access-path layer of the set-at-a-time
grounding engine (:mod:`repro.logic.ground`): it groups a truncated
table's possible facts by relation symbol and builds, on demand, hash
indexes keyed by *bound-column signatures* — the tuple of argument
positions a probe fixes to constants.  An atom ``S(x, 3)`` probes the
signature ``(1,)`` of ``S`` with key ``(3,)``; a join that has already
bound ``x`` probes ``(0, 1)`` with ``(x_value, 3)``.  Each signature
index is built once by a single pass over the relation's facts and then
answers every probe in O(1) expected time.

Indexes support *delta updates*: :meth:`FactIndex.extend` adds new
possible facts in place and patches every already-built signature index,
so a grown truncation Ω_m ⊇ Ω_n re-grounds against the same index
without rebuilding — the grounding-side analogue of the compile cache
extending one BDD manager across truncations.

The index also implements the read-only set protocol over its facts
(``in``, ``len``, iteration), so it can stand in for the
``possible_facts`` set of :func:`repro.logic.lineage.lineage_of` and its
expansion fallback.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Set,
    Tuple,
)

from repro.relational.facts import Fact, Value
from repro.relational.schema import RelationSymbol

#: A bound-column signature: the sorted argument positions a probe fixes.
Signature = Tuple[int, ...]

_EMPTY: Tuple[Fact, ...] = ()


class FactIndex:
    """Hash indexes over possible facts, per relation and bound-column
    signature.

    >>> from repro.relational import RelationSymbol
    >>> S = RelationSymbol("S", 2)
    >>> index = FactIndex([S(1, 2), S(1, 3), S(2, 3)])
    >>> sorted(str(f) for f in index.probe(S, {0: 1}))
    ['S(1, 2)', 'S(1, 3)']
    >>> list(index.probe(S, {0: 1, 1: 3}))
    [Fact(S(1, 3))]
    >>> index.extend([S(1, 4)])
    1
    >>> sorted(str(f) for f in index.probe(S, {0: 1}))
    ['S(1, 2)', 'S(1, 3)', 'S(1, 4)']
    >>> S(1, 2) in index, len(index)
    (True, 4)
    """

    __slots__ = ("_facts", "_by_relation", "_signatures", "_values")

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: Set[Fact] = set()
        self._by_relation: Dict[RelationSymbol, List[Fact]] = {}
        self._signatures: Dict[
            Tuple[RelationSymbol, Signature], Dict[Tuple[Value, ...], List[Fact]]
        ] = {}
        self._values: Set[Value] = set()
        self.extend(facts)

    # ------------------------------------------------------------- mutation
    def extend(self, facts: Iterable[Fact]) -> int:
        """Add possible facts in place; facts already indexed are
        skipped.  Every signature index built so far is patched with the
        genuinely new facts (a delta update, no rebuild).  Returns the
        number of new facts added.
        """
        added: List[Fact] = []
        for fact in facts:
            if fact in self._facts:
                continue
            self._facts.add(fact)
            self._by_relation.setdefault(fact.relation, []).append(fact)
            self._values.update(fact.args)
            added.append(fact)
        if added and self._signatures:
            for (relation, positions), table in self._signatures.items():
                for fact in added:
                    if fact.relation != relation:
                        continue
                    key = tuple(fact.args[i] for i in positions)
                    table.setdefault(key, []).append(fact)
        return len(added)

    # -------------------------------------------------------------- queries
    def probe(
        self, relation: RelationSymbol, bound: Mapping[int, Value]
    ) -> Sequence[Fact]:
        """All possible facts of ``relation`` matching the bound columns.

        ``bound`` maps argument positions to required values; an empty
        mapping scans the relation.  The signature index for the bound
        position set is built on first use and reused (and delta-updated
        by :meth:`extend`) afterwards.
        """
        facts = self._by_relation.get(relation)
        if facts is None:
            return _EMPTY
        if not bound:
            return facts
        positions = tuple(sorted(bound))
        table = self._signatures.get((relation, positions))
        if table is None:
            table = {}
            for fact in facts:
                key = tuple(fact.args[i] for i in positions)
                table.setdefault(key, []).append(fact)
            self._signatures[(relation, positions)] = table
        return table.get(tuple(bound[i] for i in positions), _EMPTY)

    def relation_facts(self, relation: RelationSymbol) -> Sequence[Fact]:
        """All possible facts of one relation (insertion order)."""
        return self._by_relation.get(relation, _EMPTY)

    @property
    def fact_set(self) -> Set[Fact]:
        """The live set of indexed facts (do not mutate)."""
        return self._facts

    @property
    def values(self) -> Set[Value]:
        """The active domain: every value occurring in an indexed fact
        (do not mutate)."""
        return self._values

    def signature_count(self) -> int:
        """How many signature indexes have been materialized."""
        return len(self._signatures)

    # --------------------------------------------------- read-only set protocol
    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __repr__(self) -> str:
        return (
            f"FactIndex(facts={len(self._facts)}, "
            f"relations={len(self._by_relation)}, "
            f"signatures={len(self._signatures)})"
        )

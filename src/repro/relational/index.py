"""Per-relation hash indexes over a set of possible facts.

A :class:`FactIndex` is the access-path layer of the set-at-a-time
grounding engine (:mod:`repro.logic.ground`): it groups a truncated
table's possible facts by relation symbol and builds, on demand, hash
indexes keyed by *bound-column signatures* — the tuple of argument
positions a probe fixes to constants.  An atom ``S(x, 3)`` probes the
signature ``(1,)`` of ``S`` with key ``(3,)``; a join that has already
bound ``x`` probes ``(0, 1)`` with ``(x_value, 3)``.  Each signature
index is built once by a single pass over the relation's facts and then
answers every probe in O(1) expected time.

Storage is columnar (see :mod:`repro.relational.columns`): every fact
is *interned* to a dense row id on first sight, and the relation lists
and signature buckets hold row ids, not fact objects.  :meth:`probe`
wraps the matching id range in a lazy fact view (so existing consumers
keep iterating facts), while :meth:`probe_rows` hands the raw ids to
vectorized consumers — the lifted evaluator gathers marginal slices by
id instead of re-grounding fact objects per candidate.

Indexes support *delta updates*: :meth:`FactIndex.extend` adds new
possible facts in place and patches every already-built signature index,
so a grown truncation Ω_m ⊇ Ω_n re-grounds against the same index
without rebuilding — the grounding-side analogue of the compile cache
extending one BDD manager across truncations.

The index also implements the read-only set protocol over its facts
(``in``, ``len``, iteration), so it can stand in for the
``possible_facts`` set of :func:`repro.logic.lineage.lineage_of` and its
expansion fallback.
"""

from __future__ import annotations

import threading
from typing import (
    Dict,
    Iterable,
    Iterator,
    KeysView,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.relational.facts import Fact, Value
from repro.relational.schema import RelationSymbol

#: A bound-column signature: the sorted argument positions a probe fixes.
Signature = Tuple[int, ...]

_EMPTY_ROWS: Tuple[int, ...] = ()

#: Per-index probe-view cache bound: beyond this many distinct buckets
#: the cache is cleared wholesale (the working set of any one query's
#: probes is far smaller; clearing only costs re-wrapping).
_VIEW_CACHE_LIMIT = 2048


class _RowFacts(Sequence):
    """A lazy fact view over a row-id range — compares, slices and
    iterates like the list of facts it denotes, without materializing
    one per probe."""

    __slots__ = ("_facts", "_rows")

    def __init__(self, facts: List[Fact], rows: Sequence[int]):
        self._facts = facts
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self._facts[row] for row in self._rows[item]]
        return self._facts[self._rows[item]]

    def __iter__(self) -> Iterator[Fact]:
        facts = self._facts
        return iter([facts[row] for row in self._rows])

    def __eq__(self, other) -> bool:
        if isinstance(other, _RowFacts):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(list(self))


class FactIndex:
    """Hash indexes over possible facts, per relation and bound-column
    signature.

    >>> from repro.relational import RelationSymbol
    >>> S = RelationSymbol("S", 2)
    >>> index = FactIndex([S(1, 2), S(1, 3), S(2, 3)])
    >>> sorted(str(f) for f in index.probe(S, {0: 1}))
    ['S(1, 2)', 'S(1, 3)']
    >>> list(index.probe(S, {0: 1, 1: 3}))
    [Fact(S(1, 3))]
    >>> index.extend([S(1, 4)])
    1
    >>> sorted(str(f) for f in index.probe(S, {0: 1}))
    ['S(1, 2)', 'S(1, 3)', 'S(1, 4)']
    >>> S(1, 2) in index, len(index)
    (True, 4)
    >>> list(index.probe_rows(S, {0: 1}))     # dense interned row ids
    [0, 1, 3]
    """

    __slots__ = (
        "_rows",
        "_row_facts",
        "_by_relation",
        "_signatures",
        "_values",
        "_marginals",
        "_marginal_source",
        "_view_cache",
        "_lock",
    )

    def __init__(self, facts: Iterable[Fact] = ()):
        #: Serializes delta-patching, lazy signature materialization and
        #: marginal-column sync; probes on already-built buckets stay
        #: lock-free (buckets are append-only row-id lists).
        self._lock = threading.RLock()
        #: fact → dense row id, in interning order.
        self._rows: Dict[Fact, int] = {}
        #: row id → fact (the fact column).
        self._row_facts: List[Fact] = []
        self._by_relation: Dict[RelationSymbol, List[int]] = {}
        self._signatures: Dict[
            Tuple[RelationSymbol, Signature], Dict[Tuple[Value, ...], List[int]]
        ] = {}
        self._values: set = set()
        #: Lazily attached marginal column aligned to row ids (see
        #: :meth:`marginal_column`); dropped from pickles.
        self._marginals = None
        self._marginal_source = None
        #: bucket id → (bucket, view): repeated probes of the same
        #: bucket reuse one lazy fact view instead of allocating a
        #: fresh ``_RowFacts`` per probe.  The strong bucket reference
        #: keeps the id stable; buckets are append-only, and the views
        #: are lazy, so cached views track extensions for free.
        self._view_cache: Dict[int, Tuple[Sequence[int], "_RowFacts"]] = {}
        self.extend(facts)

    # ------------------------------------------------------------- mutation
    def extend(self, facts: Iterable[Fact]) -> int:
        """Add possible facts in place; facts already indexed are
        skipped.  Every signature index built so far is patched with the
        genuinely new facts (a delta update, no rebuild).  Returns the
        number of new facts added.
        """
        with self._lock:
            rows = self._rows
            row_facts = self._row_facts
            added: List[int] = []
            for fact in facts:
                if fact in rows:
                    continue
                row = len(row_facts)
                rows[fact] = row
                row_facts.append(fact)
                self._by_relation.setdefault(fact.relation, []).append(row)
                self._values.update(fact.args)
                added.append(row)
            if added and self._signatures:
                for (relation, positions), table in self._signatures.items():
                    for row in added:
                        fact = row_facts[row]
                        if fact.relation != relation:
                            continue
                        key = tuple(fact.args[i] for i in positions)
                        table.setdefault(key, []).append(row)
            if added and self._marginals is not None:
                self._sync_marginals()
            return len(added)

    # -------------------------------------------------------------- queries
    def probe(
        self, relation: RelationSymbol, bound: Mapping[int, Value]
    ) -> Sequence[Fact]:
        """All possible facts of ``relation`` matching the bound columns.

        ``bound`` maps argument positions to required values; an empty
        mapping scans the relation.  The signature index for the bound
        position set is built on first use and reused (and delta-updated
        by :meth:`extend`) afterwards.
        """
        return self._view(self.probe_rows(relation, bound))

    def _view(self, rows: Sequence[int]) -> "_RowFacts":
        """The cached lazy fact view of one row-id bucket."""
        cache = self._view_cache
        entry = cache.get(id(rows))
        if entry is not None and entry[0] is rows:
            return entry[1]
        view = _RowFacts(self._row_facts, rows)
        if len(cache) >= _VIEW_CACHE_LIMIT:
            cache.clear()
        cache[id(rows)] = (rows, view)
        return view

    def probe_rows(
        self, relation: RelationSymbol, bound: Mapping[int, Value]
    ) -> Sequence[int]:
        """Row ids of the facts :meth:`probe` would return — the
        columnar form: callers gather marginal slices by id instead of
        touching fact objects."""
        rows = self._by_relation.get(relation)
        if rows is None:
            return _EMPTY_ROWS
        if not bound:
            return rows
        positions = tuple(sorted(bound))
        table = self.signature_table(relation, positions)
        return table.get(tuple(bound[i] for i in positions), _EMPTY_ROWS)

    def signature_table(
        self, relation: RelationSymbol, positions: Signature
    ) -> Mapping[Tuple[Value, ...], List[int]]:
        """The whole bucket table of one bound-column signature — key
        tuple (values at ``positions``, which must be in ascending
        order) → row-id bucket.  Built on first use, then delta-patched
        by :meth:`extend`; the batched plan executor reads it directly
        to resolve many probe keys in one pass.  An empty ``positions``
        yields the single-bucket table of the whole relation.
        """
        rows = self._by_relation.get(relation)
        if rows is None:
            return {}
        positions = tuple(positions)
        if not positions:
            # Not registered in ``_signatures``: the bucket *is* the
            # live relation list, so it tracks extensions already.
            return {(): rows}
        table = self._signatures.get((relation, positions))
        if table is None:
            # Double-checked build under the lock: a concurrent extend
            # (also locked) cannot interleave with the single pass, and
            # the table is published only once fully built.
            with self._lock:
                table = self._signatures.get((relation, positions))
                if table is None:
                    table = {}
                    row_facts = self._row_facts
                    for row in rows:
                        fact = row_facts[row]
                        key = tuple(fact.args[i] for i in positions)
                        table.setdefault(key, []).append(row)
                    self._signatures[(relation, positions)] = table
        return table

    def probe_rows_multi(
        self,
        relation: RelationSymbol,
        positions: Signature,
        keys: Iterable[Tuple[Value, ...]],
    ) -> Tuple[List[int], List[int]]:
        """Row ids for many probe keys of one signature at once.

        Returns ``(flat, offsets)``: the concatenated per-key buckets
        and the ``n_keys + 1`` segment boundaries into them — the group
        layout the segmented probability kernels consume.
        """
        flat: List[int] = []
        offsets: List[int] = [0]
        table = self.signature_table(relation, positions)
        for key in keys:
            bucket = table.get(key)
            if bucket:
                flat.extend(bucket)
            offsets.append(len(flat))
        return flat, offsets

    def relation_facts(self, relation: RelationSymbol) -> Sequence[Fact]:
        """All possible facts of one relation (insertion order)."""
        rows = self._by_relation.get(relation)
        if rows is None:
            return ()
        return self._view(rows)

    def fact_at(self, row: int) -> Fact:
        """The interned fact of one row id."""
        return self._row_facts[row]

    @property
    def epoch(self) -> int:
        """The interned-fact count — a monotone truncation epoch.  Two
        reads with equal epochs saw the identical fact set (extension is
        append-only), which is what lets per-plan-node caches decide
        delta-only re-execution."""
        return len(self._row_facts)

    def facts_since(self, epoch: int) -> List[Fact]:
        """Facts interned at row ids ``>= epoch``, in row order — the
        delta a cache stamped at ``epoch`` has not yet seen."""
        return self._row_facts[epoch:]

    @property
    def fact_set(self) -> KeysView:
        """The indexed facts as a set-like view (do not mutate)."""
        return self._rows.keys()

    @property
    def values(self) -> set:
        """The active domain: every value occurring in an indexed fact
        (do not mutate)."""
        return self._values

    def signature_count(self) -> int:
        """How many signature indexes have been materialized."""
        return len(self._signatures)

    # ------------------------------------------------------ marginal column
    def marginal_column(self, table):
        """A marginal column aligned to this index's row ids, gathered
        from ``table`` (anything with a ``marginal(fact)`` method) and
        cached.

        Valid across delta extensions because truncation growth never
        changes the marginal of an existing fact — the same invariant
        the compile cache's warm rescoring relies on.  Switching tables
        rebuilds the column (the cache is keyed by table identity).
        """
        with self._lock:
            if self._marginals is None or self._marginal_source is not table:
                from repro.relational.columns import FloatColumn

                self._marginals = FloatColumn("auto")
                self._marginal_source = table
                self._sync_marginals()
            elif len(self._marginals) < len(self._row_facts):
                self._sync_marginals()
            return self._marginals

    def _sync_marginals(self) -> None:
        marginal = self._marginal_source.marginal
        self._marginals.extend(
            marginal(fact)
            for fact in self._row_facts[len(self._marginals):]
        )

    # --------------------------------------------------- read-only set protocol
    def __contains__(self, fact: object) -> bool:
        return fact in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._rows)

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Drop the columnar caches (signature buckets stay: they are
        plain row-id dicts); the marginal column is rebuilt lazily on
        the other side of a process-pool fan-out."""
        return {
            "_rows": self._rows,
            "_row_facts": self._row_facts,
            "_by_relation": self._by_relation,
            "_signatures": self._signatures,
            "_values": self._values,
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._marginals = None
        self._marginal_source = None
        self._view_cache = {}
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        return (
            f"FactIndex(facts={len(self._rows)}, "
            f"relations={len(self._by_relation)}, "
            f"signatures={len(self._signatures)})"
        )

"""Typed schemas: per-position domain constraints on relations.

Example 5.7 of the paper restricts the binary relation ``R`` to hold
between ``{A, B, C, D}`` and ``ℕ`` ("achievable by excluding facts of the
wrong shape from ``F[τ, U]``").  A :class:`TypedRelationSymbol` carries
one :class:`AttributeType` per position; the typed fact space then only
enumerates facts of the right shape.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import SchemaError, UniverseError
from repro.relational.facts import Fact, Value
from repro.relational.schema import RelationSymbol, Schema


class AttributeType:
    """A named value domain for one attribute position.

    Wraps a membership predicate and (optionally) a deterministic
    enumeration of the domain, so typed fact spaces stay enumerable.

    >>> nat = AttributeType("nat", lambda v: isinstance(v, int) and v >= 1,
    ...                     enumerate_values=lambda: iter(range(1, 10**9)))
    >>> nat.contains(3), nat.contains("x")
    (True, False)
    """

    __slots__ = ("name", "_contains", "_enumerate")

    def __init__(
        self,
        name: str,
        contains: Callable[[Value], bool],
        enumerate_values: Optional[Callable[[], Iterator[Value]]] = None,
    ):
        self.name = name
        self._contains = contains
        self._enumerate = enumerate_values

    def contains(self, value: Value) -> bool:
        return bool(self._contains(value))

    @property
    def enumerable(self) -> bool:
        return self._enumerate is not None

    def enumerate(self) -> Iterator[Value]:
        if self._enumerate is None:
            raise UniverseError(f"attribute type {self.name!r} is not enumerable")
        return self._enumerate()

    def __repr__(self) -> str:
        return f"AttributeType({self.name!r})"

    @classmethod
    def finite(cls, name: str, values: Sequence[Value]) -> "AttributeType":
        """A finite domain listed explicitly.

        >>> t = AttributeType.finite("letters", ["A", "B"])
        >>> list(t.enumerate())
        ['A', 'B']
        """
        values = tuple(values)
        value_set = set(values)
        return cls(name, value_set.__contains__, lambda: iter(values))


class TypedRelationSymbol(RelationSymbol):
    """A relation symbol with a type per argument position.

    >>> letters = AttributeType.finite("letters", ["A", "B"])
    >>> nat = AttributeType("nat", lambda v: isinstance(v, int) and v >= 1)
    >>> R = TypedRelationSymbol("R", (letters, nat))
    >>> R.admits(("A", 3)), R.admits((3, "A"))
    (True, False)
    """

    __slots__ = ("types",)

    def __init__(
        self,
        name: str,
        types: Sequence[AttributeType],
        attributes: Optional[Sequence[str]] = None,
    ):
        super().__init__(name, len(tuple(types)), attributes=attributes)
        self.types: Tuple[AttributeType, ...] = tuple(types)

    def admits(self, args: Sequence[Value]) -> bool:
        """True iff the argument tuple matches every position's type."""
        if len(args) != self.arity:
            return False
        return all(t.contains(a) for t, a in zip(self.types, args))

    def check(self, args: Sequence[Value]) -> None:
        """Raise :class:`SchemaError` unless :meth:`admits` holds."""
        if not self.admits(args):
            raise SchemaError(
                f"arguments {tuple(args)!r} violate types of {self}: "
                f"({', '.join(t.name for t in self.types)})"
            )

    def typed_fact(self, *args: Value) -> Fact:
        """Build a fact after type-checking the arguments."""
        self.check(args)
        return Fact(self, args)


class TypedSchema(Schema):
    """A schema whose relations are all typed.

    Provides :meth:`admits_fact` for filtering fact enumerations down to
    well-shaped facts (the Example 5.7 mechanism).
    """

    def __init__(self, relations: Iterable[TypedRelationSymbol] = ()):
        relations = list(relations)
        for rel in relations:
            if not isinstance(rel, TypedRelationSymbol):
                raise SchemaError(f"TypedSchema requires typed relations, got {rel}")
        super().__init__(relations)

    def admits_fact(self, fact: Fact) -> bool:
        """True iff the fact's relation is in the schema and its arguments
        satisfy the per-position types."""
        if fact.relation.name not in self:
            return False
        symbol = self[fact.relation.name]
        assert isinstance(symbol, TypedRelationSymbol)
        return symbol.arity == fact.relation.arity and symbol.admits(fact.args)

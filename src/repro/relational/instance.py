"""Database instances: finite sets of facts.

An instance ``D ∈ D[τ, U]`` is a finite subset of the fact space
``F[τ, U]`` (paper §2.1).  Instances are immutable, hashable and totally
ordered by their canonical fact sequence, so they can serve as sample
points of discrete probability spaces.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import SchemaError
from repro.relational.facts import Fact, Value
from repro.relational.schema import RelationSymbol, Schema


class Instance:
    """An immutable finite set of facts.

    >>> R, S = RelationSymbol("R", 1), RelationSymbol("S", 2)
    >>> D = Instance([R(1), S(1, 2)])
    >>> D.size, sorted(D.active_domain())
    (2, [1, 2])
    >>> R(1) in D
    True
    """

    __slots__ = ("_facts", "_hash")

    EMPTY: "Instance"  # set below

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: FrozenSet[Fact] = frozenset(facts)
        self._hash = hash(self._facts)

    # ------------------------------------------------------------------ set API
    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        """Iterate facts in canonical (sorted) order for determinism."""
        return iter(sorted(self._facts))

    def __len__(self) -> int:
        return len(self._facts)

    @property
    def size(self) -> int:
        """The size ``‖D‖`` = number of facts (paper §2.1)."""
        return len(self._facts)

    @property
    def facts(self) -> FrozenSet[Fact]:
        return self._facts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Instance") -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """Total order: by size, then lexicographically on sorted facts."""
        return (len(self._facts), tuple(f.sort_key() for f in self))

    def __repr__(self) -> str:
        inner = ", ".join(str(f) for f in self)
        return f"Instance({{{inner}}})"

    # ------------------------------------------------------------- operations
    def union(self, other: "Instance") -> "Instance":
        return Instance(self._facts | other._facts)

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def intersection(self, other: "Instance") -> "Instance":
        return Instance(self._facts & other._facts)

    def __and__(self, other: "Instance") -> "Instance":
        return self.intersection(other)

    def difference(self, other: "Instance") -> "Instance":
        return Instance(self._facts - other._facts)

    def __sub__(self, other: "Instance") -> "Instance":
        return self.difference(other)

    def with_fact(self, fact: Fact) -> "Instance":
        return Instance(self._facts | {fact})

    def without_fact(self, fact: Fact) -> "Instance":
        return Instance(self._facts - {fact})

    def issubset(self, other: "Instance") -> bool:
        return self._facts <= other._facts

    def isdisjoint(self, other: "Instance") -> bool:
        return self._facts.isdisjoint(other._facts)

    def intersects(self, facts: AbstractSet[Fact]) -> bool:
        """True iff this instance contains any of the given facts.

        This is membership in the event ``E_F = {D : F ∩ D ≠ ∅}`` of
        Definition 3.1.
        """
        if len(facts) < len(self._facts):
            return any(f in self._facts for f in facts)
        return any(f in facts for f in self._facts)

    # ---------------------------------------------------------------- queries
    def relation(self, symbol: RelationSymbol) -> Set[Tuple[Value, ...]]:
        """The relation ``R^D`` as a set of tuples.

        >>> R = RelationSymbol("R", 1)
        >>> Instance([R(3), R(5)]).relation(R) == {(3,), (5,)}
        True
        """
        return {f.args for f in self._facts if f.relation == symbol}

    def relations(self) -> Set[RelationSymbol]:
        """The relation symbols actually occurring in this instance."""
        return {f.relation for f in self._facts}

    def active_domain(self) -> Set[Value]:
        """``adom(D)``: all universe elements occurring in the relations."""
        domain: Set[Value] = set()
        for fact in self._facts:
            domain.update(fact.args)
        return domain

    def restrict(self, symbols: Iterable[RelationSymbol]) -> "Instance":
        """Sub-instance containing only facts over the given symbols."""
        wanted = set(symbols)
        return Instance(f for f in self._facts if f.relation in wanted)

    def validate_schema(self, schema: Schema) -> "Instance":
        """Raise :class:`SchemaError` unless every fact fits ``schema``."""
        for fact in self._facts:
            if fact.relation not in schema:
                raise SchemaError(
                    f"fact {fact} uses relation {fact.relation} absent "
                    f"from schema {schema}"
                )
        return self

    @classmethod
    def of(cls, *facts: Fact) -> "Instance":
        """Variadic convenience constructor.

        >>> R = RelationSymbol("R", 1)
        >>> Instance.of(R(1), R(2)).size
        2
        """
        return cls(facts)


Instance.EMPTY = Instance()


def active_domain_of(instances: Iterable[Instance]) -> Set[Value]:
    """Union of the active domains of several instances."""
    domain: Set[Value] = set()
    for instance in instances:
        domain |= instance.active_domain()
    return domain

"""A small named relational algebra over in-memory relations.

The logic layer compiles safe-range first-order formulas to these
operators, and the lifted inference engine (``repro.finite.lifted``)
mirrors them probabilistically.  Relations here are *named*: a relation
is a set of rows, each row a mapping from column names to values.  This
keeps joins and projections readable and mirrors how safe plans are
described in the probabilistic-database literature.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EvaluationError
from repro.relational.facts import Value

#: A row maps column names to values.
Row = Tuple[Tuple[str, Value], ...]


def _freeze(mapping: Mapping[str, Value]) -> Row:
    return tuple(sorted(mapping.items()))


def _thaw(row: Row) -> Dict[str, Value]:
    return dict(row)


class Relation:
    """An immutable named relation: a header plus a set of rows.

    >>> r = Relation(("x",), [{"x": 1}, {"x": 2}])
    >>> len(r), r.columns
    (2, ('x',))
    """

    __slots__ = ("columns", "_rows")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Mapping[str, Value]] = (),
    ):
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise EvaluationError(f"duplicate columns: {self.columns}")
        column_set = set(self.columns)
        frozen: Set[Row] = set()
        for row in rows:
            if set(row) != column_set:
                raise EvaluationError(
                    f"row {dict(row)!r} does not match columns {self.columns}"
                )
            frozen.add(_freeze(row))
        self._rows: FrozenSet[Row] = frozenset(frozen)

    # ----------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Value]]:
        for row in sorted(self._rows):
            yield _thaw(row)

    def __contains__(self, row: Mapping[str, Value]) -> bool:
        return _freeze(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return set(self.columns) == set(other.columns) and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((frozenset(self.columns), self._rows))

    def __repr__(self) -> str:
        return f"Relation(columns={self.columns}, rows={len(self)})"

    def is_empty(self) -> bool:
        return not self._rows

    def tuples(self, order: Optional[Sequence[str]] = None) -> Set[Tuple[Value, ...]]:
        """Rows as positional tuples in the given (or header) column order.

        >>> Relation(("x", "y"), [{"x": 1, "y": 2}]).tuples(("y", "x"))
        {(2, 1)}
        """
        order = tuple(order) if order is not None else self.columns
        return {tuple(dict(row)[c] for c in order) for row in self._rows}

    @classmethod
    def from_tuples(
        cls, columns: Sequence[str], tuples: Iterable[Tuple[Value, ...]]
    ) -> "Relation":
        """Build from positional tuples.

        >>> len(Relation.from_tuples(("x",), [(1,), (2,)]))
        2
        """
        columns = tuple(columns)
        return cls(columns, (dict(zip(columns, t)) for t in tuples))

    @classmethod
    def nullary(cls, nonempty: bool) -> "Relation":
        """The 0-ary relation: {()} for True, {} for False (paper §2.1)."""
        return cls((), [{}] if nonempty else [])


def select(
    relation: Relation, predicate: Callable[[Dict[str, Value]], bool]
) -> Relation:
    """σ — keep rows satisfying ``predicate``.

    >>> r = Relation.from_tuples(("x",), [(1,), (2,), (3,)])
    >>> select(r, lambda row: row["x"] > 1).tuples()
    {(2,), (3,)}
    """
    return Relation(relation.columns, (row for row in relation if predicate(row)))


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π — restrict to the given columns (with duplicate elimination).

    >>> r = Relation.from_tuples(("x", "y"), [(1, 2), (1, 3)])
    >>> project(r, ("x",)).tuples()
    {(1,)}
    """
    columns = tuple(columns)
    missing = set(columns) - set(relation.columns)
    if missing:
        raise EvaluationError(f"cannot project onto unknown columns {missing}")
    return Relation(columns, ({c: row[c] for c in columns} for row in relation))


def join(left: Relation, right: Relation) -> Relation:
    """⋈ — natural join on shared column names.

    With disjoint headers this degenerates to a cartesian product; with
    identical headers to an intersection.

    >>> l = Relation.from_tuples(("x", "y"), [(1, 2), (2, 3)])
    >>> r = Relation.from_tuples(("y", "z"), [(2, 9)])
    >>> join(l, r).tuples(("x", "y", "z"))
    {(1, 2, 9)}
    """
    shared = tuple(c for c in left.columns if c in right.columns)
    out_columns = left.columns + tuple(
        c for c in right.columns if c not in left.columns
    )
    # Hash join on the shared columns.
    index: Dict[Tuple[Value, ...], list] = {}
    for row in right:
        key = tuple(row[c] for c in shared)
        index.setdefault(key, []).append(row)

    def rows() -> Iterator[Dict[str, Value]]:
        for lrow in left:
            key = tuple(lrow[c] for c in shared)
            for rrow in index.get(key, ()):
                merged = dict(lrow)
                merged.update(rrow)
                yield merged

    return Relation(out_columns, rows())


def union(left: Relation, right: Relation) -> Relation:
    """∪ — set union; headers must contain the same columns.

    >>> a = Relation.from_tuples(("x",), [(1,)])
    >>> b = Relation.from_tuples(("x",), [(2,)])
    >>> union(a, b).tuples()
    {(1,), (2,)}
    """
    if set(left.columns) != set(right.columns):
        raise EvaluationError(
            f"union requires matching columns: {left.columns} vs {right.columns}"
        )
    return Relation(left.columns, list(left) + [dict(r) for r in right])


def difference(left: Relation, right: Relation) -> Relation:
    """− — set difference; headers must contain the same columns.

    >>> a = Relation.from_tuples(("x",), [(1,), (2,)])
    >>> b = Relation.from_tuples(("x",), [(2,)])
    >>> difference(a, b).tuples()
    {(1,)}
    """
    if set(left.columns) != set(right.columns):
        raise EvaluationError(
            f"difference requires matching columns: "
            f"{left.columns} vs {right.columns}"
        )
    right_rows = {_freeze({c: row[c] for c in left.columns}) for row in right}
    return Relation(
        left.columns,
        (row for row in left if _freeze(row) not in right_rows),
    )


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """ρ — rename columns according to ``mapping`` (unmentioned kept).

    >>> r = Relation.from_tuples(("x",), [(1,)])
    >>> rename(r, {"x": "y"}).columns
    ('y',)
    """
    new_columns = tuple(mapping.get(c, c) for c in relation.columns)
    return Relation(
        new_columns,
        ({mapping.get(c, c): v for c, v in row.items()} for row in relation),
    )


def cartesian(left: Relation, right: Relation) -> Relation:
    """× — cartesian product; requires disjoint headers."""
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise EvaluationError(f"cartesian product with shared columns {overlap}")
    return join(left, right)

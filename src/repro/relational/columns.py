"""Columnar fact storage: interned facts + parallel value columns.

The engines above this layer (finite tables, the fact index, prefix
caches, the lifted evaluator, BDD rescoring) all reduce their hot loops
to the same three primitives over a truncation's facts:

* *interning* — map a :class:`~repro.relational.facts.Fact` to a dense
  integer row id once, then refer to it by id;
* *gather* — fetch the marginals of a set of row ids as one slice;
* *aggregate* — fold a marginal slice into ``Σ p``, ``Π (1 − p)`` or
  ``1 − Π (1 − p)`` (see :mod:`repro.utils.probability`).

This module stores those primitives as parallel growable columns —
facts, marginals, block ids — behind one :class:`ColumnStore` facade
with the repo's established two-backend pattern: a pure-Python list
fallback and a numpy fast path under the ``[fast]`` extra
(``backend="auto"`` picks numpy when importable).  Extension is strictly
append-only and O(delta), so the refinement engine's warm ε-sweeps keep
their incremental cost; marginals of interned facts never change
(the same invariant the compile cache relies on).

Backends agree bit-near (≤1e-12) with each other and with the historic
dict-of-floats path; the pure-Python backend's aggregates are
bit-identical to it (same fold order, same hybrid underflow policy).

Observability: ``columns.interned`` counts facts interned,
``columns.extends`` counts delta extensions, and
``columns.vectorized_ops`` counts numpy kernel dispatches.

>>> from repro.relational import RelationSymbol
>>> R = RelationSymbol("R", 1)
>>> store = ColumnStore(backend="python")
>>> store.extend_items([(R(1), 0.5), (R(2), 0.25)])
2
>>> store.row_of(R(1)), len(store)
(0, 2)
>>> store.sum_marginals()
0.75
>>> round(store.disjunction(), 10)
0.625
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.relational.facts import Fact
from repro.utils.probability import (
    disjunction,
    log_product_complement,
    numpy_or_none,
    product_complement,
    segmented_complement_product,
    segmented_disjunction,
    segmented_log_complement,
    vector_complement_product,
    vector_disjunction,
    vector_log_complement,
)

__all__ = [
    "ColumnStore",
    "FloatColumn",
    "IntColumn",
    "available_backends",
    "resolve_backend",
]

#: Obs counter: facts interned into a column store.
COLUMNS_INTERNED = "columns.interned"
#: Obs counter: delta extensions applied to a column store.
COLUMNS_EXTENDS = "columns.extends"
#: Obs counter: numpy kernel dispatches on any column.
COLUMNS_VECTOR_OPS = "columns.vectorized_ops"

#: No block: the block-id column's value for tuple-independent rows.
NO_BLOCK = -1


def resolve_backend(backend: str = "auto") -> str:
    """Resolve ``"auto"`` to the best available backend and validate.

    >>> resolve_backend("python")
    'python'
    """
    if backend == "auto":
        return "numpy" if numpy_or_none() is not None else "python"
    if backend == "numpy" and numpy_or_none() is None:
        raise ValueError(
            "columnar backend 'numpy' requires numpy "
            "(pip install .[fast]); use backend='python' instead"
        )
    if backend not in ("python", "numpy"):
        raise ValueError(f"unknown columnar backend {backend!r}")
    return backend


def available_backends() -> Tuple[str, ...]:
    """Backends importable right now, pure-Python first."""
    if numpy_or_none() is not None:
        return ("python", "numpy")
    return ("python",)


class FloatColumn:
    """A growable float64 column with prefix sums and probability folds.

    Pure-Python backend: a plain list plus an incrementally maintained
    running-sum list (one add per append — the exact arithmetic the
    prefix caches have always used).  Numpy backend: a capacity-doubling
    ``float64`` buffer with a lazily cached ``cumsum`` mirror,
    invalidated by appends and rebuilt at most once per batch of
    queries.

    >>> col = FloatColumn("python")
    >>> col.extend([0.5, 0.25, 0.125])
    3
    >>> col.prefix_sum(2)
    0.75
    >>> col[1], len(col)
    (0.25, 3)
    """

    __slots__ = ("backend", "_np", "_data", "_cumulative", "_size", "_cum")

    def __init__(self, backend: str = "auto"):
        self.backend = resolve_backend(backend)
        self._np = numpy_or_none() if self.backend == "numpy" else None
        if self.backend == "python":
            self._data: List[float] = []
            self._cumulative: List[float] = [0.0]
            self._size = 0
            self._cum = None
        else:
            self._data = self._np.empty(16, dtype=self._np.float64)
            self._cumulative = None
            self._size = 0
            self._cum = None  # lazy cumsum cache

    # ------------------------------------------------------------- mutation
    def append(self, value: float) -> None:
        value = float(value)
        if self.backend == "python":
            self._data.append(value)
            self._cumulative.append(self._cumulative[-1] + value)
            self._size += 1
            return
        if self._size == len(self._data):
            grown = self._np.empty(
                max(16, 2 * len(self._data)), dtype=self._np.float64)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size] = value
        self._size += 1
        self._cum = None

    def extend(self, values: Iterable[float]) -> int:
        before = self._size
        for value in values:
            self.append(value)
        return self._size - before

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return self._size

    def __getitem__(self, row: int) -> float:
        if not 0 <= row < self._size:
            raise IndexError(row)
        return float(self._data[row])

    def slice(self, start: int = 0, stop: Optional[int] = None) -> List[float]:
        """Rows ``[start, stop)`` as a plain list."""
        stop = self._size if stop is None else min(stop, self._size)
        if self.backend == "python":
            return self._data[start:stop]
        return self._data[start:stop].tolist()

    def array(self):
        """The live values as a numpy array view (numpy backend only)."""
        if self.backend != "numpy":
            raise ValueError(
                "array() needs the numpy backend "
                f"(this column uses {self.backend!r})"
            )
        return self._data[: self._size]

    def gather(self, rows: Sequence[int]):
        """The values at ``rows`` — a list (python) or array (numpy)."""
        if self.backend == "python":
            data = self._data
            return [data[row] for row in rows]
        obs.incr(COLUMNS_VECTOR_OPS)
        return self.array()[
            self._np.asarray(rows, dtype=self._np.intp)]

    # ---------------------------------------------------------- aggregates
    def prefix_sum(self, n: int) -> float:
        """``Σ`` of the first ``n`` values (all of them past the end)."""
        n = min(n, self._size)
        if self.backend == "python":
            return self._cumulative[n]
        if n == 0:
            return 0.0
        return float(self._cumsum()[n - 1])

    def total(self) -> float:
        return self.prefix_sum(self._size)

    def sum_rows(self, rows: Sequence[int]) -> float:
        if self.backend == "python":
            data = self._data
            return sum(data[row] for row in rows)
        obs.incr(COLUMNS_VECTOR_OPS)
        return float(self.gather(rows).sum())

    def complement_product(self, rows: Optional[Sequence[int]] = None) -> float:
        """``Π (1 − p_i)`` over all rows (or a row subset)."""
        if self.backend == "python":
            values = self._data if rows is None else (
                self._data[row] for row in rows)
            return product_complement(values)
        obs.incr(COLUMNS_VECTOR_OPS)
        values = self.array() if rows is None else self.gather(rows)
        return vector_complement_product(self._np, values)

    def log_complement(self, rows: Optional[Sequence[int]] = None) -> float:
        """``Σ log1p(−p_i)`` over all rows (or a row subset)."""
        if self.backend == "python":
            values = self._data if rows is None else (
                self._data[row] for row in rows)
            return log_product_complement(values)
        obs.incr(COLUMNS_VECTOR_OPS)
        values = self.array() if rows is None else self.gather(rows)
        return vector_log_complement(self._np, values)

    def disjunction(self, rows: Optional[Sequence[int]] = None) -> float:
        """``1 − Π (1 − p_i)`` over all rows (or a row subset)."""
        if self.backend == "python":
            values = self._data if rows is None else (
                self._data[row] for row in rows)
            return disjunction(values)
        obs.incr(COLUMNS_VECTOR_OPS)
        values = self.array() if rows is None else self.gather(rows)
        return vector_disjunction(self._np, values)

    # ----------------------------------------------------- segmented folds
    # Group-at-a-time forms for the batched plan executor: ``rows`` is a
    # flat gather list, ``offsets`` (``n_groups + 1`` entries) delimits
    # contiguous per-group segments of it.  Each returns one aggregate
    # per group — a list (python) or float64 array (numpy).

    def segmented_complement_product(
        self, rows: Sequence[int], offsets: Sequence[int]
    ):
        """Per-group ``Π (1 − p_i)`` over row segments."""
        if self.backend == "python":
            data = self._data
            values = [data[row] for row in rows]
            return segmented_complement_product(None, values, offsets)
        obs.incr(COLUMNS_VECTOR_OPS)
        return segmented_complement_product(self._np, self.gather(rows), offsets)

    def segmented_disjunction(self, rows: Sequence[int], offsets: Sequence[int]):
        """Per-group ``1 − Π (1 − p_i)`` over row segments."""
        if self.backend == "python":
            data = self._data
            values = [data[row] for row in rows]
            return segmented_disjunction(None, values, offsets)
        obs.incr(COLUMNS_VECTOR_OPS)
        return segmented_disjunction(self._np, self.gather(rows), offsets)

    def segmented_log_complement(
        self, rows: Sequence[int], offsets: Sequence[int]
    ):
        """Per-group ``Σ log1p(−p_i)`` over row segments."""
        if self.backend == "python":
            data = self._data
            values = [data[row] for row in rows]
            return segmented_log_complement(None, values, offsets)
        obs.incr(COLUMNS_VECTOR_OPS)
        return segmented_log_complement(self._np, self.gather(rows), offsets)

    def view(self):
        """The live values, zero-copy: the backing list (python) or the
        array view (numpy).  Callers must not mutate the result."""
        if self.backend == "python":
            return self._data
        return self.array()

    def _cumsum(self):
        if self._cum is None:
            obs.incr(COLUMNS_VECTOR_OPS)
            self._cum = self._np.cumsum(self.array())
        return self._cum


class IntColumn:
    """A growable integer column (block ids); same backends, no folds.

    >>> col = IntColumn("python")
    >>> col.extend([0, 0, 1])
    3
    >>> col[2]
    1
    """

    __slots__ = ("backend", "_np", "_data", "_size")

    def __init__(self, backend: str = "auto"):
        self.backend = resolve_backend(backend)
        self._np = numpy_or_none() if self.backend == "numpy" else None
        if self.backend == "python":
            self._data: List[int] = []
            self._size = 0
        else:
            self._data = self._np.empty(16, dtype=self._np.int64)
            self._size = 0

    def append(self, value: int) -> None:
        if self.backend == "python":
            self._data.append(int(value))
            self._size += 1
            return
        if self._size == len(self._data):
            grown = self._np.empty(
                max(16, 2 * len(self._data)), dtype=self._np.int64)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size] = int(value)
        self._size += 1

    def extend(self, values: Iterable[int]) -> int:
        before = self._size
        for value in values:
            self.append(value)
        return self._size - before

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, row: int) -> int:
        if not 0 <= row < self._size:
            raise IndexError(row)
        return int(self._data[row])

    def slice(self, start: int = 0, stop: Optional[int] = None) -> List[int]:
        stop = self._size if stop is None else min(stop, self._size)
        if self.backend == "python":
            return self._data[start:stop]
        return self._data[start:stop].tolist()


class ColumnStore:
    """Interned facts with parallel marginal and block-id columns.

    The row id of a fact is its interning order — dense, stable, and
    append-only, so every downstream structure that captured a row id
    (signature indexes, BDD linearizations, prefix caches) stays valid
    across delta extensions.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> store = ColumnStore(backend="python")
    >>> store.intern(R(1), 0.5)
    0
    >>> store.intern(R(1), 0.5)       # already interned: same row
    0
    >>> store.extend_items([(R(2), 0.25)])
    1
    >>> store.marginal_at(1), store.block_at(1)
    (0.25, -1)
    """

    __slots__ = ("_rows", "_facts", "marginals", "blocks")

    def __init__(self, backend: str = "auto"):
        backend = resolve_backend(backend)
        self._rows: Dict[Fact, int] = {}
        self._facts: List[Fact] = []
        self.marginals = FloatColumn(backend)
        self.blocks = IntColumn(backend)

    @property
    def backend(self) -> str:
        return self.marginals.backend

    # ------------------------------------------------------------- mutation
    def intern(self, fact: Fact, marginal: float, block: int = NO_BLOCK) -> int:
        """The row id of ``fact``, interning it (with its marginal and
        block id) on first sight."""
        row = self._rows.get(fact)
        if row is not None:
            return row
        row = len(self._facts)
        self._rows[fact] = row
        self._facts.append(fact)
        self.marginals.append(marginal)
        self.blocks.append(block)
        obs.incr(COLUMNS_INTERNED)
        return row

    def extend_items(
        self,
        items: Iterable[Tuple[Fact, float]],
        block: int = NO_BLOCK,
    ) -> int:
        """Intern ``(fact, marginal)`` pairs; returns the number of new
        rows (O(delta) — existing facts are skipped)."""
        before = len(self._facts)
        for fact, marginal in items:
            self.intern(fact, marginal, block)
        obs.incr(COLUMNS_EXTENDS)
        return len(self._facts) - before

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: object) -> bool:
        return fact in self._rows

    def row_of(self, fact: Fact) -> int:
        """The row id of an interned fact (KeyError otherwise)."""
        return self._rows[fact]

    def get_row(self, fact: Fact) -> Optional[int]:
        return self._rows.get(fact)

    def fact_at(self, row: int) -> Fact:
        return self._facts[row]

    def marginal_at(self, row: int) -> float:
        return self.marginals[row]

    def block_at(self, row: int) -> int:
        return self.blocks[row]

    def facts(self) -> List[Fact]:
        """All interned facts in row order (a copy)."""
        return list(self._facts)

    def gather_facts(self, facts: Iterable[Fact]):
        """Marginal slice for the given facts (must be interned)."""
        rows = self._rows
        return self.marginals.gather([rows[fact] for fact in facts])

    # ---------------------------------------------------------- aggregates
    def sum_marginals(self) -> float:
        """``Σ p`` over every row — expected instance size."""
        return self.marginals.total()

    def complement_product(self) -> float:
        """``Π (1 − p)`` over every row — empty-world probability."""
        return self.marginals.complement_product()

    def log_complement(self) -> float:
        return self.marginals.log_complement()

    def disjunction(self) -> float:
        return self.marginals.disjunction()

    def segmented_disjunction(self, rows: Sequence[int], offsets: Sequence[int]):
        """Per-group ``1 − Π (1 − p)`` over marginal row segments."""
        return self.marginals.segmented_disjunction(rows, offsets)

    def segmented_complement_product(
        self, rows: Sequence[int], offsets: Sequence[int]
    ):
        """Per-group ``Π (1 − p)`` over marginal row segments."""
        return self.marginals.segmented_complement_product(rows, offsets)

    def segmented_log_complement(
        self, rows: Sequence[int], offsets: Sequence[int]
    ):
        """Per-group ``Σ log1p(−p)`` over marginal row segments."""
        return self.marginals.segmented_log_complement(rows, offsets)

    def __repr__(self) -> str:
        return (
            f"ColumnStore(rows={len(self._facts)}, "
            f"backend={self.backend!r})"
        )

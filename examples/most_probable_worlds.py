"""MAP-style inference: the most probable worlds of an uncertain KB.

Given a noisy, conflicting extraction table, the most probable worlds
(top-k possible worlds) are the canonical "best repairs".  This example
builds a small BID-constrained extraction scenario, ranks its worlds,
and shows how the ranking shifts once the table is completed to an open
world — the mode stays the same, but previously impossible repairs enter
the ranking with small positive probability.

Run:  python examples/most_probable_worlds.py
"""

from repro import Schema, TupleIndependentTable, open_world
from repro.finite.topk import top_k_worlds


def main() -> None:
    schema = Schema.of(BornIn=2)
    born_in = schema["BornIn"]
    # Conflicting extractions with confidences.
    kb = TupleIndependentTable(schema, {
        born_in("turing", "london"): 0.8,
        born_in("turing", "paris"): 0.1,
        born_in("hopper", "nyc"): 0.7,
        born_in("hopper", "boston"): 0.35,
    })

    print("Top 5 worlds of the closed-world table:")
    for world, probability in top_k_worlds(kb, 5):
        facts = ", ".join(str(f) for f in world) or "(empty)"
        print(f"  {probability:.4f}  {facts}")

    # Open-world completion: unseen birthplace facts become possible.
    completed = open_world(kb, total_open_mass=0.2, decay=0.5)
    truncated = completed.truncate(6)  # original ⊗ 6 most likely new facts
    # Collapse the completed finite PDB back to a TI table for ranking:
    # the product of the original TI table and the truncated new table
    # is itself tuple-independent.
    marginals = dict(kb.marginals)
    for fact, probability in completed.new_facts.distribution.prefix(6):
        marginals[fact] = probability
    open_table = TupleIndependentTable(schema, marginals)

    print("\nTop 5 worlds after open-world completion "
          "(budget 0.2 of new mass):")
    for world, probability in top_k_worlds(open_table, 5):
        facts = ", ".join(str(f) for f in world) or "(empty)"
        print(f"  {probability:.4f}  {facts}")

    print("\nThe mode (MAP repair) is unchanged; worlds containing "
          "never-extracted facts\nnow appear in the ranking with small "
          "positive probability instead of 0.")
    assert truncated is not None  # the finite PDB view, for further queries


if __name__ == "__main__":
    main()

"""Quickstart: from a finite probabilistic table to an infinite
open-world PDB with approximate query answering.

Walks the three core moves of the paper:

1. build a classical finite tuple-independent table (closed world);
2. complete it to a countable open-world PDB (Theorem 5.5) with
   geometrically decaying probabilities for every unseen fact;
3. evaluate queries exactly under CWA and approximately (Proposition
   6.1) under OWA, and watch impossible become merely unlikely.

Run:  python examples/quickstart.py
"""

from repro import (
    BooleanQuery,
    FactSpace,
    GeometricFactDistribution,
    Naturals,
    Schema,
    TupleIndependentTable,
    complete,
    parse_formula,
    query_probability,
    verify_completion_condition,
)


def main() -> None:
    # 1. A finite TI table: who likes whom, with uncertainty.
    schema = Schema.of(Likes=2)
    likes = schema["Likes"]
    known = TupleIndependentTable(schema, {
        likes(1, 2): 0.9,
        likes(2, 1): 0.7,
        likes(2, 3): 0.4,
    })
    print("Known facts (closed world):")
    for fact in known.facts():
        print(f"  {fact}  p = {known.marginal(fact)}")

    # 2. Open-world completion: every unseen Likes-fact over ℕ gets a
    #    small decaying probability; the sum of all open-world weights
    #    converges (Σ 0.25·0.5^i = 0.5), as Theorem 4.8 requires.
    fact_space = FactSpace(schema, Naturals())
    open_world = complete(
        known,
        GeometricFactDistribution(fact_space, first=0.25, ratio=0.5),
    )
    violation = verify_completion_condition(open_world)
    print(f"\nCompletion condition P'(A|Omega) = P(A) holds "
          f"(max violation {violation:.2e})")
    print(f"Expected instance size grew from {known.expected_size():.3f} "
          f"to {open_world.expected_size():.3f}")

    # 3. Queries: never-mentioned facts — impossible vs merely unlikely,
    #    with plausibility decaying as facts get "farther" in the
    #    enumeration order.
    print("\nUnseen facts, closed vs open world:")
    for a, b in [(1, 1), (3, 3), (5, 5)]:
        fact = likes(a, b)
        sentence = BooleanQuery(
            parse_formula(f"Likes({a}, {b})", schema), schema)
        cwa = query_probability(sentence, known)
        owa = open_world.fact_marginal(fact)
        print(f"  {fact}: closed = {cwa}, open = {owa:.3e}")

    anyone = BooleanQuery(
        parse_formula("EXISTS x, y. Likes(x, y)", schema), schema)
    result = open_world.approximate_query_probability(anyone, epsilon=0.001)
    print(f"\nQ2 = {anyone.formula}")
    print(f"  closed world : P = {query_probability(anyone, known):.6f}")
    print(f"  open world   : P = {result.value:.6f} "
          f"(±{result.epsilon}, truncated at n = {result.truncation} facts)")


if __name__ == "__main__":
    main()

"""A tour of the Section 6 approximation machinery and its trade-offs.

1. the ε → n(ε) truncation rule for fast (geometric) vs slow (zeta)
   fact-probability tails — the paper's closing complexity remark;
2. the finite engines that evaluate each truncation (worlds, lineage,
   lifted, naive Monte Carlo, Karp–Luby) and when each wins;
3. what Proposition 6.2 forbids: a multiplicative guarantee.

Run:  python examples/approximation_tradeoffs.py
"""

import random
import time

from repro import (
    BooleanQuery,
    CountableTIPDB,
    FactSpace,
    GeometricFactDistribution,
    Naturals,
    Schema,
    ZetaFactDistribution,
    approximate_query_probability,
    choose_truncation,
    parse_formula,
    query_probability,
    query_probability_monte_carlo,
)
from repro.finite.karp_luby import query_probability_karp_luby

schema = Schema.of(R=1, S=2)
space = FactSpace(schema, Naturals())


def truncation_sizes() -> None:
    print("1. Truncation size n(ε) by tail family")
    print(f"   {'ε':>8}  {'geometric':>10}  {'zeta(2)':>10}")
    geometric = GeometricFactDistribution(space, first=0.5, ratio=0.5)
    zeta = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
    for epsilon in (0.1, 0.01, 0.001, 1e-4):
        print(f"   {epsilon:>8}  {choose_truncation(geometric, epsilon):>10}"
              f"  {choose_truncation(zeta, epsilon):>10}")
    print("   -> log growth vs ~10x per decade: series 'may converge")
    print("      arbitrarily slowly' (paper §6).\n")


def engine_comparison() -> None:
    print("2. Finite engines on one truncation (200 facts, safe query)")
    pdb = CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.9, ratio=0.97))
    table = pdb.truncate(200)
    query = BooleanQuery(
        parse_formula("EXISTS x, y. R(x) AND S(x, y)", schema), schema)
    start = time.perf_counter()
    exact = query_probability(query, table, strategy="lifted")
    lifted_time = time.perf_counter() - start

    rng = random.Random(7)
    start = time.perf_counter()
    mc = query_probability_monte_carlo(query, table, 2000, rng)
    mc_time = time.perf_counter() - start

    start = time.perf_counter()
    kl = query_probability_karp_luby(query, table, 10000, random.Random(8))
    kl_time = time.perf_counter() - start

    print(f"   lifted safe plan : P = {exact:.6f}   ({lifted_time:.3f}s, exact)")
    print(f"   naive MC (2000)  : P = {mc.estimate:.6f}   ({mc_time:.3f}s, "
          f"±{mc.half_width:.4f})")
    print(f"   Karp–Luby (10^4) : P = {kl.estimate:.6f}   ({kl_time:.3f}s, "
          f"union mass {kl.term_mass:.3f})")
    print("   (world enumeration would need 2^200 worlds.)\n")


def additive_vs_multiplicative() -> None:
    print("3. Additive guarantee in action — and its multiplicative limit")
    single = Schema.of(R=1)
    pdb = CountableTIPDB(
        single,
        GeometricFactDistribution(
            FactSpace(single, Naturals()), first=0.5, ratio=0.5))
    query = BooleanQuery(
        parse_formula("EXISTS x. R(x)", single), single)
    # Single-relation schema: P(Q) = 1 − P(∅) exactly.
    truth = 1.0 - pdb.empty_world_probability()
    for epsilon in (0.1, 0.001):
        result = approximate_query_probability(query, pdb, epsilon)
        print(f"   ε = {epsilon:>6}: p = {result.value:.6f}, "
              f"|p − P(Q)| = {abs(result.value - truth):.2e} ≤ ε ✓")
    print("   But for queries with P(Q) near 0, p/P(Q) is uncontrollable:")
    print("   Proposition 6.2 reduces Turing-machine emptiness to telling")
    print("   'exactly 0' from 'positive but below any truncation' —")
    print("   see benchmarks/bench_multiplicative.py for the demonstration.")


def main() -> None:
    truncation_sizes()
    engine_comparison()
    additive_vs_multiplicative()


if __name__ == "__main__":
    main()

"""Example 3.2: probabilistic completion of an incomplete database.

The paper's running example — a Person relation with null values:

* ``(Peter, Lindner, male, German, ⊥)``: the missing height completed
  from a (discretized) normal distribution around 180 cm;
* ``(⊥, Grohe, male, German, 183)``: the missing first name completed
  from a name-frequency list *plus* a small open-world tail over all
  other strings, decaying with length — "this time a countable"
  probabilistic database.

Run:  python examples/incomplete_database_completion.py
"""

from repro import Schema, StringUniverse
from repro.incomplete import (
    DiscretizedContinuous,
    IncompleteFact,
    IncompleteInstance,
    Null,
    StringFrequencyValues,
    complete_incomplete_instance,
)

ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def main() -> None:
    schema = Schema.of(Person=5)
    person = schema["Person"]

    database = IncompleteInstance([
        IncompleteFact(person,
                       ("Peter", "Lindner", "male", "German", Null("h"))),
        IncompleteFact(person,
                       (Null("n"), "Grohe", "male", "German", 183)),
    ])
    print(f"Incomplete database: {len(database)} tuples, "
          f"nulls {sorted(n.label for n in database.nulls())}")

    height = DiscretizedContinuous.normal(
        mean=180.0, std=7.0, low=150.0, high=210.0, bins=60)
    first_name = StringFrequencyValues(
        {"martin": 0.55, "michael": 0.25, "m": 0.05},
        unseen_mass=0.15,
        universe=StringUniverse(ALPHABET),
        decay=0.5,
    )
    pdb = complete_incomplete_instance(
        database, {Null("h"): height, Null("n"): first_name}, schema)
    print(f"Completion PDB is "
          f"{'finite' if pdb.exhaustive else 'countably infinite'} "
          "(the name tail ranges over all of Sigma*).\n")

    print("Marginal height completions (Lindner):")
    for h in (173.5, 180.5, 187.5, 200.5):
        fact = person("Peter", "Lindner", "male", "German", h)
        p = pdb.fact_marginal(fact, tolerance=1e-6)
        bar = "#" * int(400 * p)
        print(f"  {h:>6} cm: {p:.4f} {bar}")

    print("\nMarginal first-name completions (Grohe):")
    for name in ("martin", "michael", "m", "a", "zz"):
        fact = person(name, "Grohe", "male", "German", 183)
        p = pdb.fact_marginal(fact, tolerance=1e-7)
        print(f"  {name!r:>10}: {p:.6f}")
    print("\nNames absent from the frequency list keep a small positive "
          "probability,\ndecaying with enumeration rank — the open-world "
          "reading of Example 3.2.")

    joint = pdb.probability(
        lambda D: person("martin", "Grohe", "male", "German", 183) in D
        and any(f.args[1] == "Lindner" and f.args[4] > 183 for f in D),
        tolerance=1e-6,
    )
    print(f"\nP(first name 'martin' AND Lindner taller than 183 cm) "
          f"= {joint:.4f}")
    print("(Nulls complete independently — the paper's caveat about "
          "correlated attributes\nis handled by completing a joint null "
          "with tuple values instead.)")


if __name__ == "__main__":
    main()

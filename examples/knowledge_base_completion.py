"""Example 5.7 end-to-end, plus a NELL-style string knowledge base.

Part 1 reproduces the paper's Example 5.7 verbatim: the 4-fact t.i.
table over R ⊆ {A,B,C,D} × ℕ, completed with open-world weights so that
"all finite Boolean combinations of distinct facts have probability > 0".

Part 2 plays the same move on a toy knowledge base with *string*
entities over Σ* — the Knowledge-Vault/NELL shape the paper cites as
motivation — comparing three semantics side by side:

  closed world (Remark 5.2)  |  OpenPDB λ-intervals (Ceylan et al.)  |
  infinite completion (Theorem 5.5).

Run:  python examples/knowledge_base_completion.py
"""

from repro import (
    BooleanQuery,
    WordLengthFactDistribution,
    FactSpace,
    FiniteUniverse,
    GeometricFactDistribution,
    Naturals,
    OpenPDB,
    Schema,
    StringUniverse,
    TupleIndependentTable,
    complete,
    closed_world_completion,
    credal_query_probability,
    parse_formula,
    query_probability,
)


def example_5_7() -> None:
    print("=" * 64)
    print("Part 1 — Example 5.7")
    print("=" * 64)
    schema = Schema.of(R=2)
    R = schema["R"]
    table = TupleIndependentTable(schema, {
        R("A", 1): 0.8,
        R("B", 1): 0.4,
        R("B", 2): 0.5,
        R("C", 3): 0.9,
    })
    # R is typed {A,B,C,D} × ℕ: facts of the wrong shape are excluded
    # from F[τ, U] (paper: "achievable by excluding facts of the wrong
    # shape").
    typed_space = FactSpace(
        schema, Naturals(),
        position_universes={
            "R": (FiniteUniverse(["A", "B", "C", "D"]), Naturals())},
    )
    completed = complete(
        table,
        GeometricFactDistribution(typed_space, first=0.5, ratio=2 ** -0.25),
    )

    print("\nClosed world: D never occurs; two R(A,·) facts impossible.")
    cwa = closed_world_completion(table)
    print(f"  P(R(D, 1)) = {cwa.fact_marginal(R('D', 1))}")

    print("\nOpen world: every well-shaped fact is possible:")
    for fact in [R("D", 1), R("A", 2), R("C", 10)]:
        print(f"  P({fact}) = {completed.fact_marginal(fact):.5f}")
    print(f"  P(R(1, 'A')) = {completed.fact_marginal(R(1, 'A'))}"
          "   <- wrong shape stays impossible")

    finite = completed.truncate(12)
    combo = BooleanQuery(parse_formula(
        "R('D', 1) AND NOT R('A', 2) AND R('A', 1)", schema), schema)
    print(f"\nBoolean combination {combo.formula}:")
    print(f"  P = {query_probability(combo, finite):.6f}  (> 0, as the "
          "paper promises)")


def string_knowledge_base() -> None:
    print()
    print("=" * 64)
    print("Part 2 — a string knowledge base over Sigma*")
    print("=" * 64)
    schema = Schema.of(CityIn=2)
    city_in = schema["CityIn"]
    # Extracted facts with extraction confidences.
    kb = TupleIndependentTable(schema, {
        city_in("aachen", "germany"): 0.95,
        city_in("berlin", "germany"): 0.99,
        city_in("paris", "france"): 0.98,
        city_in("essen", "germany"): 0.70,
    })
    query = BooleanQuery(
        parse_formula("CityIn('bonn', 'germany')", schema), schema)

    # Semantics 1: closed world.
    print(f"\nQ = {query.formula}")
    print(f"  CWA:       P = {query_probability(query, kb)}")

    # Semantics 2: OpenPDB over the *finite* universe of mentioned
    # entities plus 'bonn' — intervals, not point probabilities.
    entities = FiniteUniverse(
        ["aachen", "berlin", "paris", "essen", "bonn", "germany", "france"])
    open_pdb = OpenPDB(kb, lambd=0.1, universe=entities)
    interval = credal_query_probability(query, open_pdb)
    print(f"  OpenPDB:   P in [{interval.low}, {interval.high}]  "
          f"(lambda = {open_pdb.lambd}, finite universe)")

    # Semantics 3: the paper's infinite completion over all of Σ* —
    # a point probability for every string pair, decaying with total
    # word length ("decaying with increasing length", Example 3.2).
    completed = complete(
        kb,
        WordLengthFactDistribution(
            schema, "abcdefghijklmnopqrstuvwxyz", decay=0.035, scale=0.3),
    )
    bonn_probability = completed.fact_marginal(city_in("bonn", "germany"))
    print(f"  Infinite:  P = {bonn_probability:.3e}  "
          "(point value, infinite universe)")

    # And a fact about an entity no finite universe would contain:
    anywhere = city_in("zz", "a")
    print(f"\n  P(CityIn('zz', 'a')) = "
          f"{completed.fact_marginal(anywhere):.3e}  — no fixed universe "
          "needed")


def main() -> None:
    example_5_7()
    string_knowledge_base()


if __name__ == "__main__":
    main()

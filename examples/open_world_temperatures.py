"""The paper's introduction scenario: office temperature sensors.

A database collects noisy temperature measurements for two offices. The
recorded readings never include a temperature between 20.2°C and 20.5°C.

* Under the closed-world assumption, "office 1 reads 20.3°C" is
  *impossible* (probability exactly 0), and so is every reading not in
  the table — including the intuitive near-misses.
* Under the paper's open-world completion, unseen readings get small
  positive probabilities that *decay with distance* from the recorded
  values, so "0.05°C below office 2" is more likely than "10°C above" —
  exactly the desideratum of the introduction.

Temperatures are discretized to a 0.1°C grid (the library's substitution
for the paper's idealized continuous values; see DESIGN.md).

Run:  python examples/open_world_temperatures.py
"""

from repro import (
    BooleanQuery,
    Schema,
    TupleIndependentTable,
    complete,
    parse_formula,
    query_probability,
)
from repro.core.fact_distribution import TableFactDistribution


GRID = [round(18.0 + 0.1 * i, 1) for i in range(60)]  # 18.0 .. 23.9 °C


def reading_plausibility(celsius: float, anchors, scale: float) -> float:
    """Open-world weight for an unseen reading: exponential decay in the
    distance to the nearest recorded temperature."""
    distance = min(abs(celsius - a) for a in anchors)
    return scale * 2.0 ** (-10.0 * distance)


def main() -> None:
    schema = Schema.of(Temp=2)
    temp = schema["Temp"]

    # Recorded (noisy) measurements: office 1 runs cooler than office 2.
    recorded = TupleIndependentTable(schema, {
        temp("office1", 20.0): 0.6,
        temp("office1", 20.1): 0.5,
        temp("office1", 20.2): 0.4,
        temp("office2", 20.6): 0.6,
        temp("office2", 20.7): 0.5,
        temp("office2", 20.8): 0.4,
    })
    anchors1 = [20.0, 20.1, 20.2]
    anchors2 = [20.6, 20.7, 20.8]

    # Open-world weights over the whole grid, decaying with distance from
    # each office's recorded range.  Total open mass is finite, as
    # Theorem 4.8 requires.
    open_weights = {}
    for celsius in GRID:
        f1 = temp("office1", celsius)
        f2 = temp("office2", celsius)
        if f1 not in recorded.marginals:
            open_weights[f1] = reading_plausibility(celsius, anchors1, 0.05)
        if f2 not in recorded.marginals:
            open_weights[f2] = reading_plausibility(celsius, anchors2, 0.05)
    open_world = complete(recorded, TableFactDistribution(open_weights))

    print("The gap reading 20.3°C in office 1:")
    q_gap = BooleanQuery(
        parse_formula("Temp('office1', 20.3)", schema), schema)
    print(f"  closed world: P = {query_probability(q_gap, recorded)}")
    print(f"  open world  : P = {open_world.fact_marginal(temp('office1', 20.3)):.4f}")

    print("\nGraded implausibility (office 1):")
    for celsius in (20.3, 20.5, 21.2, 23.0):
        p = open_world.fact_marginal(temp("office1", celsius))
        print(f"  reading {celsius:>4}°C: P = {p:.6f}")

    # The introduction's comparison: office 1 only 0.05° below office 2
    # vs office 1 a whole 10° above office 2.  We compare the nearest
    # grid versions: (20.5, 20.6) — a 0.1° inversion-adjacent pair —
    # against office 1 reading 23.9 while office 2 reads its usual 20.6.
    # Both are conjunctions of one open-world office-1 fact with one
    # recorded office-2 fact; the completion is a product measure, so
    # the joint probability is the product of the marginals.
    p_near = (open_world.fact_marginal(temp("office1", 20.5))
              * open_world.fact_marginal(temp("office2", 20.6)))
    p_far = (open_world.fact_marginal(temp("office1", 23.9))
             * open_world.fact_marginal(temp("office2", 20.6)))
    print("\nOffice 1 nearly as warm as office 2 vs 3°C warmer:")
    print(f"  near miss (20.5 vs 20.6): P = {p_near:.3e}")
    print(f"  wildly off (23.9 vs 20.6): P = {p_far:.3e}")
    print(f"  ratio: {p_near / p_far:.1f}x more plausible")
    print("\nUnder the CWA both events have the exact same probability 0 "
          "(paper §1).")


if __name__ == "__main__":
    main()

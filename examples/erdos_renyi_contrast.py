"""Related-work contrast (paper §1): G(n, p) asymptotics vs an infinite
tuple-independent PDB over the edge fact space.

The Erdős–Rényi model G(n, p) is "tuple-independent" with a *finite*
sample space of n-vertex graphs, studied as n → ∞ — its behaviour is
dominated by very large graphs.  The paper's countable t.i. PDB instead
fixes a single infinite fact space with summable edge probabilities; its
behaviour is dominated by instances near the (finite) expected size.

This script makes the contrast concrete:

* in G(n, 1/2) the expected edge count n(n−1)/4 explodes with n;
* in the infinite t.i. PDB with edge probabilities decaying by rank, the
  expected size is a small constant and sampled graphs stay small —
  Borel–Cantelli at work (Lemma 2.5 / Corollary 4.7).

Run:  python examples/erdos_renyi_contrast.py
"""

import random

from repro import (
    CountableTIPDB,
    FactSpace,
    GeometricFactDistribution,
    Naturals,
    Schema,
)


def erdos_renyi_expected_edges(n: int, p: float) -> float:
    return p * n * (n - 1) / 2


def main() -> None:
    print("G(n, 1/2): expected edge count as n grows")
    for n in (10, 100, 1000):
        print(f"  n = {n:>5}: E[edges] = {erdos_renyi_expected_edges(n, 0.5):,.0f}")
    print("  -> diverges; the asymptotic theory is about enormous graphs.\n")

    schema = Schema.of(Edge=2)
    edge_space = FactSpace(schema, Naturals())
    pdb = CountableTIPDB(
        schema,
        GeometricFactDistribution(edge_space, first=0.5, ratio=0.75),
    )
    print("Infinite t.i. PDB over ALL edge facts Edge(i, j), i, j in N:")
    print(f"  Sum of edge probabilities (= E[edges]) = "
          f"{pdb.expected_size():.3f}   (finite: Corollary 4.7)")

    rng = random.Random(2019)
    sizes = [pdb.sample(rng).size for _ in range(5000)]
    sizes.sort()
    print(f"  5000 sampled graphs: mean = {sum(sizes) / len(sizes):.3f} "
          f"edges, median = {sizes[len(sizes) // 2]}, "
          f"max = {sizes[-1]}")
    print("  -> every sampled instance is finite and small; the space is")
    print("     dominated by instances near the expected size (paper §1,")
    print("     'both views have their merits').\n")

    # The flip side: make the probabilities non-summable and the
    # construction must refuse (Theorem 4.8) — G(n, p)'s constant p per
    # edge cannot extend to infinitely many edges.
    from repro import ConvergenceError, DivergentFactDistribution

    try:
        CountableTIPDB(schema, DivergentFactDistribution(edge_space))
    except ConvergenceError as err:
        print("Constant-style (divergent) edge probabilities are rejected:")
        print(f"  {err}")


if __name__ == "__main__":
    main()
